//! `wizard-script`: a declarative match-rule instrumentation language
//! compiled onto the probe engine.
//!
//! Every analysis in the Monitor Zoo (`wizard-monitors`) is hand-written
//! Rust linked at build time. This crate turns instrumentation into
//! *data*: a small `match`-rule language whose programs arrive at
//! runtime (a string — per job, per request, per experiment), are matched
//! statically against the module, and are *lowered onto the probe
//! engine* so scripted analyses inherit the paper's §4.4 JIT fast paths
//! instead of paying generic-probe checkpoint costs:
//!
//! ```text
//! source ──parse──▶ Script ──match──▶ sites ──classify──▶ probes
//!           (lex.rs,        (matcher.rs)      (lower.rs)
//!            parse.rs)
//! ```
//!
//! A rule is `match <selector> [once] [when <predicate>] do <actions>`:
//!
//! * **selectors** name opcode classes (`call`, `branch`, `load|store`,
//!   `loop-header`, `func:enter`, `func:exit`, `*`), exact mnemonics
//!   (`i32.div_s`), or exact locations (`func[3]+12`);
//! * **predicates** are integer expressions over `pc`, `func`, `op`
//!   (static per site — folded at compile time), `tos`/`tos64`/`depth`
//!   (dynamic), and named counters (`$n`);
//! * **actions** bump named counters: scalars (`inc calls`) or per-site
//!   tables (`inc exec[site]`);
//! * **`report` directives** render the counters as a structured
//!   [`Report`](wizard_engine::Report), so scripted runs merge into
//!   `wizard-pool` fleet aggregates like any hand-written monitor.
//!
//! The compiler classifies every rule-site pair: a statically-false
//! predicate installs *nothing*; a pure counter bump lowers to a
//! [`ProbeKind::Count`](wizard_engine::ProbeKind) probe (JIT-inlined
//! increment); a residue touching only the top of stack lowers to an
//! operand probe (direct call, no FrameAccessor); everything else falls
//! back to a generic probe. `match branch when op == br_table || tos != 0
//! do inc taken[site]` is the canonical example — free on `br_table`
//! sites, an operand probe on `if`/`br_if`.
//!
//! ```
//! use wizard_engine::store::Linker;
//! use wizard_engine::{EngineConfig, Process, Value};
//! use wizard_script::ScriptMonitor;
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! let i = f.local(I32);
//! f.for_range(i, 0, |f| {
//!     f.nop();
//! });
//! f.local_get(0);
//! mb.add_func("spin", f);
//!
//! let monitor = ScriptMonitor::from_source(
//!     "monitor \"spin-stats\"\n\
//!      match loop-header do inc iters\n\
//!      match * do inc exec[site]\n\
//!      report \"summary\" total \"loop-header executions\" iters\n\
//!      report \"summary\" total \"instructions\" exec",
//! )?;
//!
//! let mut p = Process::new(mb.build()?, EngineConfig::tiered(), &Linker::new())?;
//! let m = p.attach_monitor(monitor)?;
//! p.invoke_export("spin", &[Value::I32(10)])?;
//! assert_eq!(m.borrow().counter("iters"), 11); // entry + 10 backedges
//! let report = m.report();
//! assert_eq!(report.title, "spin-stats");
//! p.detach_monitor(m.handle())?; // zero-overhead baseline restored
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lex;
pub mod lower;
pub mod matcher;
pub mod monitor;
pub mod parse;

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use wizard_engine::Monitor;
use wizard_pool::MonitorFactory;

pub use ast::{Script, Selector};
pub use error::ScriptError;
pub use monitor::{LoweredSite, ScriptMonitor};

impl Script {
    /// Parses and validates a script; see [`parse::parse`].
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] on syntax or script-level validation
    /// failures.
    pub fn parse(source: &str) -> Result<Script, ScriptError> {
        parse::parse(source)
    }
}

/// Builds a `Send + Sync` [`MonitorFactory`] from script source, so a
/// `wizard-pool` fleet runs the script per job: the source is parsed and
/// validated *once, up front* (errors surface here, before any job is
/// submitted), and each worker thread then compiles its own
/// [`ScriptMonitor`] against its job's module. Module-dependent failures
/// (a rule matching nothing) fail only that job, as a
/// `monitor attach error`.
///
/// ```
/// use wizard_engine::Value;
/// use wizard_pool::{Job, Pool, PoolConfig};
/// # use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
/// # use wizard_wasm::types::ValType::I32;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut mb = ModuleBuilder::new();
/// # let mut f = FuncBuilder::new(&[I32], &[I32]);
/// # let i = f.local(I32);
/// # f.for_range(i, 0, |f| { f.nop(); });
/// # f.local_get(0);
/// # mb.add_func("run", f);
/// # let module = mb.build()?;
/// let factory = wizard_script::monitor_factory(
///     "monitor \"iters\"\n\
///      match loop-header do inc n\n\
///      report \"summary\" total \"loop headers\" n",
/// )?;
/// let mut pool = Pool::new(PoolConfig::default());
/// for k in 0..4 {
///     pool.submit(
///         Job::new(format!("job-{k}"), module.clone(), "run", vec![Value::I32(5)])
///             .with_monitor_factory(factory.clone()),
///     );
/// }
/// let outcome = pool.run();
/// assert!(outcome.all_ok());
/// let merged = outcome.merged_report("iters").expect("merged script report");
/// assert_eq!(merged.get("summary").unwrap().count_of("loop headers"), Some(4 * 6));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`ScriptError`] if the source does not parse or validate.
pub fn monitor_factory(source: &str) -> Result<MonitorFactory, ScriptError> {
    let script = Script::parse(source)?;
    Ok(Arc::new(move || {
        Rc::new(RefCell::new(ScriptMonitor::new(script.clone()))) as Rc<RefCell<dyn Monitor>>
    }))
}
