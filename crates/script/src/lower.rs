//! The lowering pass: per matched site, partially evaluate the rule's
//! predicate against the site's static facts (`pc`, `func`, `op`),
//! classify the residue, and pick the cheapest probe shape the engine can
//! execute (paper §4.4):
//!
//! * predicate statically **false** → *no probe at all*;
//! * predicate statically **true**, plain counter bumps → a
//!   [`ProbeKind::Count`] probe per bump — the JIT inlines the increment;
//! * residue reads only the **top of stack** (at an operand-consuming
//!   instruction) → a [`ProbeKind::Operand`] probe — direct call with the
//!   top slot, no FrameAccessor;
//! * anything else (reads `depth` or counters, or the rule is `once`) →
//!   a generic probe with the full [`ProbeCtx`].
//!
//! This is what makes `match branch when op == br_table || tos != 0 do
//! inc taken[site]` free on `br_table` sites (pure counter) and cheap on
//! `if`/`br_if` sites (operand probe), with no interpretation at runtime.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;

use wizard_engine::{Location, Probe, ProbeCtx, ProbeId, ProbeKind, ProbeRef, Slot};
use wizard_wasm::opcodes as op;

use crate::ast::{Action, BinOp, Expr, Rule, UnOp};
use crate::matcher::Site;

// ---- static environment and partial evaluation ----

/// Interprets an i64 as a boolean: nonzero is true.
fn truthy(v: i64) -> bool {
    v != 0
}

fn fold_binop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Or => i64::from(truthy(a) || truthy(b)),
        BinOp::And => i64::from(truthy(a) && truthy(b)),
        BinOp::Eq => i64::from(a == b),
        BinOp::Ne => i64::from(a != b),
        BinOp::Lt => i64::from(a < b),
        BinOp::Le => i64::from(a <= b),
        BinOp::Gt => i64::from(a > b),
        BinOp::Ge => i64::from(a >= b),
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Division/remainder by zero are defined as 0 (consistently at
        // fold time and at runtime) so predicates cannot trap.
        BinOp::Div => a.checked_div(b).unwrap_or(0),
        BinOp::Rem => a.checked_rem(b).unwrap_or(0),
    }
}

/// The value of `e` if it is a constant.
fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Const(v) => Some(*v),
        _ => None,
    }
}

/// Partially evaluates `e` at a site: `pc`/`func`/`op` become constants,
/// constant subtrees fold, and `||`/`&&` short-circuit around constant
/// operands (expressions are side-effect-free, so folding a constant
/// right operand is sound too).
pub fn simplify(e: &Expr, site: Site) -> Expr {
    match e {
        Expr::Pc => Expr::Const(i64::from(site.loc.pc)),
        Expr::Func => Expr::Const(i64::from(site.loc.func)),
        Expr::Op => Expr::Const(i64::from(site.opcode)),
        Expr::Const(_) | Expr::Tos | Expr::Tos64 | Expr::Depth | Expr::Counter { .. } => e.clone(),
        Expr::Unary(uop, a) => {
            let a = simplify(a, site);
            match (uop, const_of(&a)) {
                (UnOp::Not, Some(v)) => Expr::Const(i64::from(!truthy(v))),
                (UnOp::Neg, Some(v)) => Expr::Const(v.wrapping_neg()),
                _ => Expr::Unary(*uop, Box::new(a)),
            }
        }
        Expr::Binary(bop, a, b) => {
            let a = simplify(a, site);
            let b = simplify(b, site);
            match (bop, const_of(&a), const_of(&b)) {
                (_, Some(x), Some(y)) => Expr::Const(fold_binop(*bop, x, y)),
                (BinOp::Or, Some(x), _) => {
                    if truthy(x) {
                        Expr::Const(1)
                    } else {
                        b
                    }
                }
                (BinOp::Or, _, Some(y)) => {
                    if truthy(y) {
                        Expr::Const(1)
                    } else {
                        a
                    }
                }
                (BinOp::And, Some(x), _) => {
                    if truthy(x) {
                        b
                    } else {
                        Expr::Const(0)
                    }
                }
                (BinOp::And, _, Some(y)) => {
                    if truthy(y) {
                        a
                    } else {
                        Expr::Const(0)
                    }
                }
                _ => Expr::Binary(*bop, Box::new(a), Box::new(b)),
            }
        }
    }
}

// ---- counters ----

/// The monitor's counter storage: named scalar cells and named per-site
/// tables (one cell per matched location, materialized at lowering so
/// unexecuted sites report as zero rows). `BTreeMap` keys keep tables in
/// code order.
#[derive(Debug, Default)]
pub struct CounterBank {
    scalars: Vec<(String, Rc<Cell<u64>>)>,
    tables: Vec<(String, Table)>,
}

/// A per-site counter table, in code order.
pub type Table = BTreeMap<Location, Rc<Cell<u64>>>;

impl CounterBank {
    /// The scalar cell for `name`, created on first use.
    pub fn scalar(&mut self, name: &str) -> Rc<Cell<u64>> {
        if let Some((_, c)) = self.scalars.iter().find(|(n, _)| n == name) {
            return Rc::clone(c);
        }
        let cell = Rc::new(Cell::new(0));
        self.scalars.push((name.to_string(), Rc::clone(&cell)));
        cell
    }

    /// The table cell for `name` at `loc`, created on first use.
    pub fn table_cell(&mut self, name: &str, loc: Location) -> Rc<Cell<u64>> {
        let idx = match self.tables.iter().position(|(n, _)| n == name) {
            Some(i) => i,
            None => {
                self.tables.push((name.to_string(), BTreeMap::new()));
                self.tables.len() - 1
            }
        };
        Rc::clone(self.tables[idx].1.entry(loc).or_insert_with(|| Rc::new(Cell::new(0))))
    }

    /// The table for `name`, if any rule incremented it per-site.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// The scalar value of `name`, if declared.
    pub fn scalar_value(&self, name: &str) -> Option<u64> {
        self.scalars.iter().find(|(n, _)| n == name).map(|(_, c)| c.get())
    }

    /// All scalar counters in declaration order.
    pub fn scalars(&self) -> impl Iterator<Item = (&str, u64)> {
        self.scalars.iter().map(|(n, c)| (n.as_str(), c.get()))
    }

    /// Sum of a counter by name: a scalar's value, or a table summed
    /// across its sites. 0 for an undeclared name.
    pub fn sum(&self, name: &str) -> u64 {
        if let Some(v) = self.scalar_value(name) {
            return v;
        }
        self.table(name).map_or(0, |t| t.values().map(|c| c.get()).sum())
    }
}

// ---- resolved (runtime) expressions ----

/// A residual predicate with counter reads resolved to their cells: what
/// a probe actually evaluates at fire time. Static atoms are already
/// folded away by [`simplify`].
#[derive(Debug, Clone)]
pub enum RExpr {
    /// A constant.
    Const(i64),
    /// Top of stack as a signed 32-bit value (0 on an empty stack).
    Tos,
    /// Top of stack as a signed 64-bit value.
    Tos64,
    /// Call-stack depth.
    Depth,
    /// A resolved counter read.
    Cell(Rc<Cell<u64>>),
    /// A unary operation.
    Unary(UnOp, Box<RExpr>),
    /// A binary operation.
    Binary(BinOp, Box<RExpr>, Box<RExpr>),
}

/// Resolves counter reads in a simplified expression against the bank at
/// one site. Reading a table counter at a site outside the table is a
/// constant 0.
pub fn resolve(e: &Expr, bank: &mut CounterBank, loc: Location) -> RExpr {
    match e {
        Expr::Const(v) => RExpr::Const(*v),
        Expr::Tos => RExpr::Tos,
        Expr::Tos64 => RExpr::Tos64,
        Expr::Depth => RExpr::Depth,
        Expr::Counter { name, per_site: false } => RExpr::Cell(bank.scalar(name)),
        Expr::Counter { name, per_site: true } => match bank.table(name) {
            Some(t) => t.get(&loc).map_or(RExpr::Const(0), |c| RExpr::Cell(Rc::clone(c))),
            None => RExpr::Const(0),
        },
        Expr::Unary(op, a) => RExpr::Unary(*op, Box::new(resolve(a, bank, loc))),
        Expr::Binary(op, a, b) => {
            RExpr::Binary(*op, Box::new(resolve(a, bank, loc)), Box::new(resolve(b, bank, loc)))
        }
        Expr::Pc | Expr::Func | Expr::Op => unreachable!("folded by simplify"),
    }
}

/// What dynamic state an expression touches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Atoms {
    /// Reads the top-of-stack slot.
    pub tos: bool,
    /// Reads the call depth.
    pub depth: bool,
    /// Reads a counter cell.
    pub cells: bool,
}

/// Analyzes a resolved expression's dynamic dependencies.
pub fn atoms(e: &RExpr) -> Atoms {
    match e {
        RExpr::Const(_) => Atoms::default(),
        RExpr::Tos | RExpr::Tos64 => Atoms { tos: true, ..Atoms::default() },
        RExpr::Depth => Atoms { depth: true, ..Atoms::default() },
        RExpr::Cell(_) => Atoms { cells: true, ..Atoms::default() },
        RExpr::Unary(_, a) => atoms(a),
        RExpr::Binary(_, a, b) => {
            let (x, y) = (atoms(a), atoms(b));
            Atoms { tos: x.tos || y.tos, depth: x.depth || y.depth, cells: x.cells || y.cells }
        }
    }
}

/// Evaluates a resolved expression.
pub fn eval(e: &RExpr, tos: Option<Slot>, depth: u32) -> i64 {
    match e {
        RExpr::Const(v) => *v,
        RExpr::Tos => i64::from(tos.map_or(0, Slot::i32)),
        RExpr::Tos64 => tos.map_or(0, Slot::i64),
        RExpr::Depth => i64::from(depth),
        RExpr::Cell(c) => c.get() as i64,
        RExpr::Unary(UnOp::Not, a) => i64::from(!truthy(eval(a, tos, depth))),
        RExpr::Unary(UnOp::Neg, a) => eval(a, tos, depth).wrapping_neg(),
        RExpr::Binary(op, a, b) => {
            // `||`/`&&` could short-circuit, but operands are pure.
            fold_binop(*op, eval(a, tos, depth), eval(b, tos, depth))
        }
    }
}

// ---- probe shapes ----

/// A counter bump over a shared cell — [`ProbeKind::Count`], inlined by
/// the JIT exactly like the engine's own
/// [`CountProbe`](wizard_engine::CountProbe), but over a cell the script
/// monitor owns (so several sites can share a scalar).
#[derive(Debug)]
pub struct CellCountProbe {
    cell: Rc<Cell<u64>>,
}

impl CellCountProbe {
    /// Creates the probe over an existing cell.
    pub fn new(cell: Rc<Cell<u64>>) -> CellCountProbe {
        CellCountProbe { cell }
    }
}

impl Probe for CellCountProbe {
    fn fire(&mut self, _ctx: &mut ProbeCtx<'_, '_>) {
        self.cell.set(self.cell.get() + 1);
    }

    fn kind(&self) -> ProbeKind {
        ProbeKind::Count
    }

    fn count_cell(&self) -> Option<Rc<Cell<u64>>> {
        Some(Rc::clone(&self.cell))
    }
}

/// A top-of-stack observer — [`ProbeKind::Operand`]: the JIT calls
/// [`Probe::fire_operand`] with the top slot directly.
#[derive(Debug)]
pub struct TosProbe {
    pred: RExpr,
    cells: Vec<Rc<Cell<u64>>>,
}

impl TosProbe {
    fn record(&self, top: Option<Slot>) {
        if truthy(eval(&self.pred, top, 0)) {
            for c in &self.cells {
                c.set(c.get() + 1);
            }
        }
    }
}

impl Probe for TosProbe {
    fn fire(&mut self, ctx: &mut ProbeCtx<'_, '_>) {
        self.record(ctx.top_of_stack());
    }

    fn kind(&self) -> ProbeKind {
        ProbeKind::Operand
    }

    fn fire_operand(&mut self, _loc: Location, top: Slot) {
        self.record(Some(top));
    }
}

/// The generic fallback: full predicate over the [`ProbeCtx`], optional
/// self-removal (`once`).
#[derive(Debug)]
pub struct GenericRuleProbe {
    pred: Option<RExpr>,
    cells: Vec<Rc<Cell<u64>>>,
    /// For `once` rules: this probe's id, filled in after batch commit;
    /// the probe removes itself after its first effective firing.
    once_id: Option<Rc<Cell<Option<ProbeId>>>>,
}

impl Probe for GenericRuleProbe {
    fn fire(&mut self, ctx: &mut ProbeCtx<'_, '_>) {
        let holds = match &self.pred {
            None => true,
            Some(p) => truthy(eval(p, ctx.top_of_stack(), ctx.depth())),
        };
        if !holds {
            return;
        }
        for c in &self.cells {
            c.set(c.get() + 1);
        }
        if let Some(idc) = &self.once_id {
            if let Some(id) = idc.get() {
                ctx.remove_probe(id);
            }
        }
    }
}

fn shared(p: impl Probe) -> ProbeRef {
    Rc::new(std::cell::RefCell::new(p))
}

// ---- the lowering itself ----

/// One probe the compiler decided to install.
pub struct LoweredProbe {
    /// Index of the originating rule within the script.
    pub rule: usize,
    /// Where the probe goes.
    pub loc: Location,
    /// The shape it lowered to.
    pub kind: ProbeKind,
    /// The probe value, ready for a [`ProbeBatch`](wizard_engine::ProbeBatch).
    pub probe: ProbeRef,
    /// For `once` probes: the id cell to fill after batch commit.
    pub once_id: Option<Rc<Cell<Option<ProbeId>>>>,
    /// The residual predicate, for diagnostics (`None` = unconditional).
    pub residual: Option<String>,
}

impl core::fmt::Debug for LoweredProbe {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LoweredProbe")
            .field("rule", &self.rule)
            .field("loc", &self.loc)
            .field("kind", &self.kind)
            .field("residual", &self.residual)
            .finish()
    }
}

/// `true` if the instruction is guaranteed to have at least one operand
/// on the stack when it executes (a probe fires *before* the
/// instruction), making an intrinsified top-of-stack read well-defined.
fn consumes_operand(opcode: u8) -> bool {
    matches!(
        opcode,
        op::IF
            | op::BR_IF
            | op::BR_TABLE
            | op::DROP
            | op::SELECT
            | op::LOCAL_SET
            | op::LOCAL_TEE
            | op::GLOBAL_SET
            | op::CALL_INDIRECT
            | op::MEMORY_GROW
    ) || op::is_memory_access(opcode)
        || (op::I32_EQZ..=op::I64_EXTEND32_S).contains(&opcode)
}

/// Materializes the counter cells of one rule's actions at its matched
/// sites, so report tables include never-executed sites as zero rows —
/// and so that the per-site counters a predicate reads resolve to the
/// same cells the actions bump.
///
/// Callers lowering several rules must materialize *every* rule first,
/// then lower: a predicate reading `$t[site]` is resolved against the
/// bank, and the cell must already exist even when the rule incrementing
/// `t` appears later in the script (rule order must not change
/// semantics).
pub fn materialize_rule(rule: &Rule, sites: &[Site], bank: &mut CounterBank) {
    for site in sites {
        for action in &rule.actions {
            match action {
                Action::Inc { counter, per_site } => {
                    if *per_site {
                        bank.table_cell(counter, site.loc);
                    } else {
                        bank.scalar(counter);
                    }
                }
                // `trace` streams events; it owns no counter cells.
                Action::Trace => {}
            }
        }
    }
}

/// Dataflow facts about one site, as consumed by the lowering pass —
/// the bridge from `wizard-analysis`'s
/// [`TosFact`](wizard_analysis::TosFact) to predicate folding. The
/// default (no facts) lowers exactly as before the analysis existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteFacts {
    /// The site can never execute: no probe is installed at all (its
    /// zero table rows are still materialized, so reports are
    /// row-identical to an unfactored lowering).
    pub unreachable: bool,
    /// The operand stack is provably empty when the probe fires, so
    /// `tos`/`tos64` read as 0 ([`eval`] maps an absent top slot to 0).
    pub stack_empty: bool,
    /// The top of stack is provably this slot bit pattern.
    pub tos_const: Option<u64>,
}

impl SiteFacts {
    /// The constant slot `tos` reads at this site, if any.
    fn tos_slot(&self) -> Option<Slot> {
        if self.stack_empty {
            // An empty stack reads as 0 through both `tos` and `tos64`.
            Some(Slot(0))
        } else {
            self.tos_const.map(Slot)
        }
    }
}

/// Substitutes provably-constant `tos`/`tos64` reads before folding,
/// mirroring [`eval`]'s slot conversions exactly (`tos` truncates to
/// i32, `tos64` reads the full slot).
fn substitute_tos(e: &Expr, facts: SiteFacts) -> Expr {
    let Some(slot) = facts.tos_slot() else { return e.clone() };
    match e {
        Expr::Tos => Expr::Const(i64::from(slot.i32())),
        Expr::Tos64 => Expr::Const(slot.i64()),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(substitute_tos(a, facts))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(substitute_tos(a, facts)),
            Box::new(substitute_tos(b, facts)),
        ),
        _ => e.clone(),
    }
}

/// [`simplify`] with dataflow facts folded in: `tos` reads at sites with
/// a provably-constant (or provably-empty) stack become constants first,
/// often collapsing the whole predicate.
pub fn simplify_with_facts(e: &Expr, site: Site, facts: SiteFacts) -> Expr {
    simplify(&substitute_tos(e, facts), site)
}

/// Lowers one rule at its matched sites, returning the probes to
/// install. The rule's cells are materialized first (idempotently) —
/// when lowering a multi-rule script, call [`materialize_rule`] for
/// *all* rules before lowering any of them. Sites whose predicate folds
/// to false produce nothing (and are counted in `dropped`).
pub fn lower_rule(
    rule_index: usize,
    rule: &Rule,
    sites: &[Site],
    bank: &mut CounterBank,
    dropped: &mut usize,
) -> Vec<LoweredProbe> {
    lower_rule_with_facts(rule_index, rule, sites, &[], bank, dropped)
}

/// [`lower_rule`] with per-site dataflow facts: unreachable sites get no
/// probe, and provably-constant `tos` predicates fold — demoting shapes
/// (generic → operand → count → nothing) without changing any observable
/// count. `facts` is indexed like `sites`; an empty slice (or
/// [`SiteFacts::default`] entries) disables fact-driven folding.
pub fn lower_rule_with_facts(
    rule_index: usize,
    rule: &Rule,
    sites: &[Site],
    facts: &[SiteFacts],
    bank: &mut CounterBank,
    dropped: &mut usize,
) -> Vec<LoweredProbe> {
    materialize_rule(rule, sites, bank);

    let mut out = Vec::new();
    for (i, site) in sites.iter().enumerate() {
        let fact = facts.get(i).copied().unwrap_or_default();
        if fact.unreachable {
            // The probe could never fire; its cells are already
            // materialized above, so reports keep the zero rows.
            *dropped += 1;
            continue;
        }
        let simplified = rule.when.as_ref().map(|w| simplify_with_facts(w, *site, fact));
        if let Some(Expr::Const(v)) = &simplified {
            if !truthy(*v) {
                *dropped += 1;
                continue;
            }
        }
        let always = matches!(&simplified, None | Some(Expr::Const(_)));
        let cells: Vec<Rc<Cell<u64>>> = rule
            .actions
            .iter()
            .filter_map(|action| match action {
                Action::Inc { counter, per_site } => Some(if *per_site {
                    bank.table_cell(counter, site.loc)
                } else {
                    bank.scalar(counter)
                }),
                // `trace` is lowered separately (a dedicated branch probe
                // in the monitor), not as a counter bump here.
                Action::Trace => None,
            })
            .collect();

        if rule.once {
            let pred =
                if always { None } else { simplified.as_ref().map(|e| resolve(e, bank, site.loc)) };
            let residual = (!always).then(|| simplified.as_ref().expect("residual").to_string());
            let once_id: Rc<Cell<Option<ProbeId>>> = Rc::new(Cell::new(None));
            out.push(LoweredProbe {
                rule: rule_index,
                loc: site.loc,
                kind: ProbeKind::Generic,
                probe: shared(GenericRuleProbe { pred, cells, once_id: Some(Rc::clone(&once_id)) }),
                once_id: Some(once_id),
                residual,
            });
        } else if always {
            // Pure counter bumps: one Count probe per action, each fully
            // inlined by the JIT.
            for cell in cells {
                out.push(LoweredProbe {
                    rule: rule_index,
                    loc: site.loc,
                    kind: ProbeKind::Count,
                    probe: shared(CellCountProbe::new(cell)),
                    once_id: None,
                    residual: None,
                });
            }
        } else {
            let expr = simplified.as_ref().expect("residual predicate");
            let resolved = resolve(expr, bank, site.loc);
            let a = atoms(&resolved);
            let residual = Some(expr.to_string());
            if a.tos && !a.depth && !a.cells && consumes_operand(site.opcode) {
                out.push(LoweredProbe {
                    rule: rule_index,
                    loc: site.loc,
                    kind: ProbeKind::Operand,
                    probe: shared(TosProbe { pred: resolved, cells }),
                    once_id: None,
                    residual,
                });
            } else {
                out.push(LoweredProbe {
                    rule: rule_index,
                    loc: site.loc,
                    kind: ProbeKind::Generic,
                    probe: shared(GenericRuleProbe { pred: Some(resolved), cells, once_id: None }),
                    once_id: None,
                    residual,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn site(opcode: u8, func: u32, pc: u32) -> Site {
        Site { loc: Location { func, pc }, opcode }
    }

    fn pred_of(src: &str) -> Expr {
        parse(src).unwrap().rules[0].when.clone().unwrap()
    }

    #[test]
    fn static_facts_fold_away() {
        let w = pred_of("match * when op == br_table || tos != 0 do inc a");
        // At a br_table site the whole predicate is constant-true...
        assert_eq!(simplify(&w, site(op::BR_TABLE, 0, 4)), Expr::Const(1));
        // ...and at a br_if site it reduces to the dynamic residue.
        let residual = simplify(&w, site(op::BR_IF, 0, 4));
        assert_eq!(residual.to_string(), "(tos != 0)");
    }

    #[test]
    fn arithmetic_and_shortcircuit_folding() {
        let w = pred_of("match * when pc * 2 + 1 == 9 do inc a");
        assert_eq!(simplify(&w, site(op::NOP, 0, 4)), Expr::Const(1));
        assert_eq!(simplify(&w, site(op::NOP, 0, 5)), Expr::Const(0));
        let w = pred_of("match * when 0 && tos != 0 do inc a");
        assert_eq!(simplify(&w, site(op::NOP, 0, 0)), Expr::Const(0));
        let w = pred_of("match * when tos / 0 == 0 do inc a");
        // Division by zero is 0, not a trap.
        let r = simplify(&w, site(op::NOP, 0, 0));
        assert_eq!(
            eval(
                &resolve(&r, &mut CounterBank::default(), Location { func: 0, pc: 0 }),
                Some(Slot::from_i32(5)),
                0
            ),
            1
        );
    }

    #[test]
    fn classification_per_site() {
        let script = parse(
            "match * when op == br_table || tos != 0 do inc t[site]\n\
             match * do inc all[site]\n\
             match * when depth > 1 do inc deep",
        )
        .unwrap();
        let mut bank = CounterBank::default();
        let mut dropped = 0;
        let sites = [site(op::BR_TABLE, 0, 0), site(op::BR_IF, 0, 3)];

        let l0 = lower_rule(0, &script.rules[0], &sites, &mut bank, &mut dropped);
        assert_eq!(l0.len(), 2);
        assert_eq!(l0[0].kind, ProbeKind::Count, "br_table side folded to pure counter");
        assert_eq!(l0[1].kind, ProbeKind::Operand, "br_if side is a top-of-stack observer");
        assert_eq!(l0[1].residual.as_deref(), Some("(tos != 0)"));

        let l1 = lower_rule(1, &script.rules[1], &sites, &mut bank, &mut dropped);
        assert!(l1.iter().all(|p| p.kind == ProbeKind::Count));

        let l2 = lower_rule(2, &script.rules[2], &sites, &mut bank, &mut dropped);
        assert!(l2.iter().all(|p| p.kind == ProbeKind::Generic), "depth needs the full ctx");
        assert_eq!(dropped, 0);
    }

    #[test]
    fn false_predicates_drop_the_probe() {
        let script = parse("match * when op == nop do inc a").unwrap();
        let mut bank = CounterBank::default();
        let mut dropped = 0;
        let lowered = lower_rule(
            0,
            &script.rules[0],
            &[site(op::NOP, 0, 0), site(op::BR_IF, 0, 2)],
            &mut bank,
            &mut dropped,
        );
        assert_eq!(lowered.len(), 1, "only the nop site keeps a probe");
        assert_eq!(lowered[0].kind, ProbeKind::Count);
        assert_eq!(dropped, 1);
    }

    #[test]
    fn tos_on_non_operand_sites_stays_generic() {
        // `local.get` pushes; the stack may be empty when it executes, so
        // an intrinsified top-of-stack read is not well-defined there.
        let script = parse("match * when tos != 0 do inc a").unwrap();
        let mut bank = CounterBank::default();
        let mut dropped = 0;
        let lowered = lower_rule(
            0,
            &script.rules[0],
            &[site(op::LOCAL_GET, 0, 0), site(op::I32_ADD, 0, 2)],
            &mut bank,
            &mut dropped,
        );
        assert_eq!(lowered[0].kind, ProbeKind::Generic);
        assert_eq!(lowered[1].kind, ProbeKind::Operand, "i32.add always pops");
    }

    #[test]
    fn facts_fold_tos_predicates_to_cheaper_shapes() {
        // `local.get` doesn't consume an operand, so `tos == 0` is
        // normally a Generic probe — but with a provably-empty stack the
        // predicate folds to constant-true (Count), and with a
        // provably-nonzero top it folds to constant-false (no probe).
        let script = parse("match * when tos == 0 do inc a[site]").unwrap();
        let sites =
            [site(op::LOCAL_GET, 0, 0), site(op::LOCAL_GET, 0, 2), site(op::LOCAL_GET, 0, 4)];
        let mut bank = CounterBank::default();
        let mut dropped = 0;

        let baseline = lower_rule(0, &script.rules[0], &sites, &mut bank, &mut dropped);
        assert!(baseline.iter().all(|p| p.kind == ProbeKind::Generic));

        let facts = [
            SiteFacts { stack_empty: true, ..SiteFacts::default() },
            SiteFacts { tos_const: Some(Slot::from_i32(7).0), ..SiteFacts::default() },
            SiteFacts::default(),
        ];
        let mut bank = CounterBank::default();
        let mut dropped = 0;
        let lowered =
            lower_rule_with_facts(0, &script.rules[0], &sites, &facts, &mut bank, &mut dropped);
        assert_eq!(lowered.len(), 2, "constant-false site installs nothing");
        assert_eq!(lowered[0].kind, ProbeKind::Count, "empty stack folds tos==0 to true");
        assert_eq!(lowered[0].residual, None);
        assert_eq!(lowered[1].kind, ProbeKind::Generic, "no facts, no demotion");
        assert_eq!(dropped, 1);
    }

    #[test]
    fn unreachable_sites_drop_probes_but_keep_zero_rows() {
        let script = parse("match * do inc t[site]").unwrap();
        let sites = [site(op::NOP, 0, 0), site(op::NOP, 0, 1)];
        let facts = [SiteFacts::default(), SiteFacts { unreachable: true, ..SiteFacts::default() }];
        let mut bank = CounterBank::default();
        let mut dropped = 0;
        let lowered =
            lower_rule_with_facts(0, &script.rules[0], &sites, &facts, &mut bank, &mut dropped);
        assert_eq!(lowered.len(), 1);
        assert_eq!(dropped, 1);
        // The dead site still reports as a zero row.
        let table = bank.table("t").unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table[&Location { func: 0, pc: 1 }].get(), 0);
    }

    #[test]
    fn tos64_substitution_matches_eval_conversions() {
        // A constant top slot must fold through `tos` (i32 view) and
        // `tos64` (full slot) exactly as `eval` would read them.
        let slot = Slot::from_i64(-1);
        let w = pred_of("match * when tos == -1 && tos64 == -1 do inc a");
        let folded = simplify_with_facts(
            &w,
            site(op::NOP, 0, 0),
            SiteFacts { tos_const: Some(slot.0), ..SiteFacts::default() },
        );
        assert_eq!(folded, Expr::Const(1));
    }

    #[test]
    fn bank_sums_scalars_and_tables() {
        let mut bank = CounterBank::default();
        bank.scalar("s").set(3);
        bank.table_cell("t", Location { func: 0, pc: 0 }).set(2);
        bank.table_cell("t", Location { func: 0, pc: 2 }).set(5);
        assert_eq!(bank.sum("s"), 3);
        assert_eq!(bank.sum("t"), 7);
        assert_eq!(bank.sum("missing"), 0);
        assert_eq!(bank.scalars().collect::<Vec<_>>(), vec![("s", 3)]);
    }
}
