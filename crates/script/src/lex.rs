//! The wizard-script lexer.
//!
//! Identifiers may contain dots (`i32.add`, `memory.grow`) so opcode
//! mnemonics lex as single tokens; `loop-header` lexes as
//! `loop` `-` `header` (the selector parser reassembles it). Comments run
//! from `#` or `//` to end of line. Newlines are whitespace — statements
//! are keyword-delimited.

use crate::error::ScriptError;

/// A token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (may contain `.` and `_`).
    Ident(String),
    /// Integer literal (decimal or `0x` hex).
    Num(i64),
    /// String literal.
    Str(String),
    /// `*`
    Star,
    /// `|`
    Pipe,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `$`
    Dollar,
    /// End of input.
    Eof,
}

impl core::fmt::Display for Tok {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Num(n) => write!(f, "`{n}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Star => f.write_str("`*`"),
            Tok::Pipe => f.write_str("`|`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Plus => f.write_str("`+`"),
            Tok::Minus => f.write_str("`-`"),
            Tok::Slash => f.write_str("`/`"),
            Tok::Percent => f.write_str("`%`"),
            Tok::EqEq => f.write_str("`==`"),
            Tok::NotEq => f.write_str("`!=`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::AndAnd => f.write_str("`&&`"),
            Tok::OrOr => f.write_str("`||`"),
            Tok::Bang => f.write_str("`!`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Dollar => f.write_str("`$`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> char {
        let c = self.chars[self.pos];
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    /// Consumes `next` if it is the upcoming character.
    fn eat(&mut self, next: char) -> bool {
        if self.peek() == Some(next) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_line(&mut self) {
        while self.peek().is_some_and(|c| c != '\n') {
            self.bump();
        }
    }

    fn error(&self, msg: impl Into<String>) -> ScriptError {
        ScriptError::Parse { line: self.line, col: self.col, msg: msg.into() }
    }
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns [`ScriptError::Parse`] on unterminated strings, malformed
/// numbers, or characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, ScriptError> {
    let mut lx = Lexer { chars: source.chars().collect(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::new();

    while let Some(c) = lx.peek() {
        let (tline, tcol) = (lx.line, lx.col);
        let token = |kind| Token { kind, line: tline, col: tcol };
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '#' => lx.skip_line(),
            '"' => {
                lx.bump();
                let mut s = String::new();
                loop {
                    match lx.peek() {
                        None | Some('\n') => return Err(lx.error("unterminated string literal")),
                        Some('"') => {
                            lx.bump();
                            break;
                        }
                        Some('\\') => {
                            lx.bump();
                            match lx.peek() {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(e @ ('"' | '\\')) => s.push(e),
                                other => {
                                    return Err(
                                        lx.error(format!("unsupported string escape {other:?}"))
                                    )
                                }
                            }
                            lx.bump();
                        }
                        Some(other) => {
                            s.push(other);
                            lx.bump();
                        }
                    }
                }
                out.push(token(Tok::Str(s)));
            }
            c if c.is_ascii_digit() => {
                let mut digits = String::new();
                digits.push(lx.bump());
                let hex = digits == "0" && lx.eat('x');
                if hex {
                    digits.clear();
                    while lx.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                        digits.push(lx.bump());
                    }
                    if digits.is_empty() {
                        return Err(lx.error("hex literal needs at least one digit"));
                    }
                } else {
                    while lx.peek().is_some_and(|c| c.is_ascii_digit()) {
                        digits.push(lx.bump());
                    }
                }
                let radix = if hex { 16 } else { 10 };
                let Ok(v) = i64::from_str_radix(&digits, radix) else {
                    return Err(lx.error(format!("integer literal out of range: {digits}")));
                };
                out.push(token(Tok::Num(v)));
            }
            c if is_ident_start(c) => {
                let mut s = String::new();
                s.push(lx.bump());
                while lx.peek().is_some_and(is_ident_cont) {
                    s.push(lx.bump());
                }
                out.push(token(Tok::Ident(s)));
            }
            _ => {
                lx.bump();
                // Errors in this arm point at the offending character, not
                // at the position after it.
                let perr =
                    |msg: &str| ScriptError::Parse { line: tline, col: tcol, msg: msg.to_string() };
                let kind = match c {
                    '*' => Tok::Star,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '%' => Tok::Percent,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    ':' => Tok::Colon,
                    '$' => Tok::Dollar,
                    '/' => {
                        if lx.eat('/') {
                            lx.skip_line();
                            continue;
                        }
                        Tok::Slash
                    }
                    '=' => {
                        if lx.eat('=') {
                            Tok::EqEq
                        } else {
                            return Err(perr(
                                "expected `==` (assignment is not part of the language)",
                            ));
                        }
                    }
                    '!' => {
                        if lx.eat('=') {
                            Tok::NotEq
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if lx.eat('=') {
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if lx.eat('=') {
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '&' => {
                        if lx.eat('&') {
                            Tok::AndAnd
                        } else {
                            return Err(perr("expected `&&`"));
                        }
                    }
                    '|' => {
                        if lx.eat('|') {
                            Tok::OrOr
                        } else {
                            Tok::Pipe
                        }
                    }
                    other => return Err(perr(&format!("unexpected character {other:?}"))),
                };
                out.push(token(kind));
            }
        }
    }
    out.push(Token { kind: Tok::Eof, line: lx.line, col: lx.col });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_rule_shapes() {
        let toks = kinds("match loop-header when tos != 0 do inc n[site] # c");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("match".into()),
                Tok::Ident("loop".into()),
                Tok::Minus,
                Tok::Ident("header".into()),
                Tok::Ident("when".into()),
                Tok::Ident("tos".into()),
                Tok::NotEq,
                Tok::Num(0),
                Tok::Ident("do".into()),
                Tok::Ident("inc".into()),
                Tok::Ident("n".into()),
                Tok::LBracket,
                Tok::Ident("site".into()),
                Tok::RBracket,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn mnemonics_strings_and_numbers() {
        let toks = kinds("i32.add \"a\\\"b\" 0x2a 42 // trailing");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("i32.add".into()),
                Tok::Str("a\"b".into()),
                Tok::Num(42),
                Tok::Num(42),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn operators_disambiguate() {
        assert_eq!(
            kinds("|| | <= < == != ! && %"),
            vec![
                Tok::OrOr,
                Tok::Pipe,
                Tok::Le,
                Tok::Lt,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Bang,
                Tok::AndAnd,
                Tok::Percent,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let e = lex("match x\n  ^bad").unwrap_err();
        match e {
            ScriptError::Parse { line, col, .. } => {
                assert_eq!(line, 2);
                assert_eq!(col, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(lex("\"unterminated").is_err());
        assert!(lex("& alone").is_err());
        assert!(lex("0x").is_err());
    }
}
