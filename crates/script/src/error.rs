//! Script compilation and matching errors.

use wizard_engine::ProbeError;

/// An error from parsing, validating, or matching a script.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptError {
    /// A syntax error with its 1-based source position.
    Parse {
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
        /// What went wrong.
        msg: String,
    },
    /// A selector or expression names an opcode mnemonic that does not
    /// exist in the instruction set.
    UnknownOpcode {
        /// The unrecognized name.
        name: String,
    },
    /// A counter is used both as a scalar (`inc n`) and as a per-site
    /// table (`inc n[site]`).
    CounterKindMismatch {
        /// The counter name.
        name: String,
    },
    /// A `report` directive references a counter no rule increments, or a
    /// counter of the wrong shape (e.g. `top` over a scalar).
    BadReport {
        /// The offending section name.
        section: String,
        /// What went wrong.
        msg: String,
    },
    /// A rule's selector matched no instruction in the module. `detail`
    /// lists nearest candidates (disassembled neighbours for location
    /// selectors, opcodes present in the module for class selectors).
    NoMatch {
        /// The rule's source text.
        rule: String,
        /// Diagnostic detail, human-readable.
        detail: String,
    },
    /// A `trace` action on a rule shape it does not support (anything but
    /// a plain `match branch do trace`).
    BadTrace {
        /// The rule's source text.
        rule: String,
        /// What went wrong.
        msg: String,
    },
    /// A `func[N]+PC` selector names a function outside the module's
    /// locally-defined range.
    BadFunction {
        /// The requested function index.
        func: u32,
        /// Number of functions in the module's index space.
        num_funcs: u32,
    },
}

impl core::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScriptError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            ScriptError::UnknownOpcode { name } => {
                write!(f, "`{name}` is not an opcode mnemonic or selector class")
            }
            ScriptError::CounterKindMismatch { name } => {
                write!(f, "counter `{name}` is used both as a scalar and as a per-site table")
            }
            ScriptError::BadReport { section, msg } => {
                write!(f, "report \"{section}\": {msg}")
            }
            ScriptError::NoMatch { rule, detail } => {
                write!(f, "rule `{rule}` matched no sites; {detail}")
            }
            ScriptError::BadTrace { rule, msg } => {
                write!(f, "rule `{rule}`: {msg}")
            }
            ScriptError::BadFunction { func, num_funcs } => {
                write!(
                    f,
                    "func[{func}] is not a locally-defined function \
                     (module has {num_funcs} functions, imports are not probeable)"
                )
            }
        }
    }
}

impl std::error::Error for ScriptError {}

impl From<ScriptError> for ProbeError {
    /// Script failures surface through the monitor lifecycle as
    /// [`ProbeError::MonitorRejected`], so a bad script fails its own
    /// attach (and, in a pool, its own job) with the full diagnostic.
    fn from(e: ScriptError) -> ProbeError {
        ProbeError::MonitorRejected(e.to_string())
    }
}
