//! The wizard-script AST: plain data, `Clone + Send + Sync`, so a parsed
//! [`Script`] can cross threads (e.g. into a `wizard-pool` worker) and be
//! compiled against each job's module independently.

/// A parsed script: an optional monitor name, the match rules, and the
/// report directives, all in source order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Script {
    /// Report title declared with `monitor "name"` (default `"script"`).
    pub name: Option<String>,
    /// The `match` rules.
    pub rules: Vec<Rule>,
    /// The `report` directives.
    pub reports: Vec<ReportDirective>,
}

impl Script {
    /// The report title: the declared monitor name or `"script"`.
    pub fn title(&self) -> &str {
        self.name.as_deref().unwrap_or("script")
    }
}

/// One `match <selector> [once] [when <expr>] do <actions>` rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// What instructions the rule instruments.
    pub selector: Selector,
    /// `once`: the probe removes itself after the first firing in which
    /// the predicate held (self-removing coverage-style instrumentation).
    pub once: bool,
    /// Optional `when` predicate; absent means always.
    pub when: Option<Expr>,
    /// Actions executed when the predicate holds.
    pub actions: Vec<Action>,
    /// The rule's source text, for diagnostics.
    pub text: String,
}

/// A static instruction selector.
#[derive(Debug, Clone, PartialEq)]
pub enum Selector {
    /// `*` — every instruction of every local function.
    Any,
    /// `call` — direct and indirect calls.
    Call,
    /// `branch` — conditional branches (`if`, `br_if`, `br_table`), the
    /// instructions with a condition/index on top of the stack.
    /// (Unconditional `br` is selectable by mnemonic.)
    Branch,
    /// `load` — memory loads.
    Load,
    /// `store` — memory stores.
    Store,
    /// `loop-header` — `loop` instructions.
    LoopHeader,
    /// `func:enter` — the first instruction of every function body.
    FuncEnter,
    /// `func:exit` — every `return` plus the body's final `end`.
    FuncExit,
    /// An exact opcode mnemonic, e.g. `i32.add` or `br`.
    Opcode(String),
    /// `func[N]+PC` — one exact location.
    At {
        /// Function index (imports included in the index space).
        func: u32,
        /// Byte offset of the instruction within the body.
        pc: u32,
    },
    /// Alternation: `load|store`.
    Or(Vec<Selector>),
}

impl core::fmt::Display for Selector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Selector::Any => f.write_str("*"),
            Selector::Call => f.write_str("call"),
            Selector::Branch => f.write_str("branch"),
            Selector::Load => f.write_str("load"),
            Selector::Store => f.write_str("store"),
            Selector::LoopHeader => f.write_str("loop-header"),
            Selector::FuncEnter => f.write_str("func:enter"),
            Selector::FuncExit => f.write_str("func:exit"),
            Selector::Opcode(name) => f.write_str(name),
            Selector::At { func, pc } => write!(f, "func[{func}]+{pc}"),
            Selector::Or(alts) => {
                for (i, a) in alts.iter().enumerate() {
                    if i > 0 {
                        f.write_str("|")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
        }
    }
}

/// A rule action.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// `inc name` / `inc name[site]`: bump a named counter by one. With
    /// `[site]` the counter is a per-location table (one cell per matched
    /// site); without, a single scalar cell shared by all sites.
    Inc {
        /// Counter name.
        counter: String,
        /// `true` for a per-site table counter.
        per_site: bool,
    },
    /// `trace`: stream this site's branch outcome to the monitor's trace
    /// sink in the compact `wizard-trace` binary format. Only valid on a
    /// plain `match branch` rule (no `when`, no `once`), which keeps the
    /// emitted stream byte-identical to the hand-written
    /// `StreamingTraceMonitor`'s.
    Trace,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Logical not: `!x` is 1 if `x == 0`, else 0.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators, in increasing precedence groups:
/// `||` < `&&` < comparisons < `+ -` < `* / %`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

/// The expression language: 64-bit signed integers, with comparisons and
/// logical operators yielding 0/1 and any nonzero value counting as true.
///
/// `pc`, `func` and `op` are *static* per matched site — the compiler
/// folds them to constants while lowering, which is how a predicate like
/// `op == br_table || tos != 0` becomes a pure counter at `br_table`
/// sites and a top-of-stack observer everywhere else. Only `tos`/`tos64`,
/// `depth` and counter reads are dynamic.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An integer literal (or a folded static value).
    Const(i64),
    /// The site's byte offset within its function body (static).
    Pc,
    /// The site's function index (static).
    Func,
    /// The site's opcode byte (static). Opcode mnemonics used as bare
    /// identifiers (e.g. `br_table`) are constants to compare against.
    Op,
    /// Top-of-stack slot, read as a signed 32-bit value (0 if the operand
    /// stack is empty — only meaningful at operand-consuming sites).
    Tos,
    /// Top-of-stack slot, read as a signed 64-bit value.
    Tos64,
    /// Call-stack depth at the firing site.
    Depth,
    /// `$name` / `$name[site]`: read a counter (scalar, or this site's
    /// table cell; 0 if the table has no cell at this site).
    Counter {
        /// Counter name.
        name: String,
        /// `true` to read this site's cell of a table counter.
        per_site: bool,
    },
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl core::fmt::Display for Expr {
    /// Renders the expression fully parenthesized (used when dumping the
    /// residual predicate of a lowered rule).
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Pc => f.write_str("pc"),
            Expr::Func => f.write_str("func"),
            Expr::Op => f.write_str("op"),
            Expr::Tos => f.write_str("tos"),
            Expr::Tos64 => f.write_str("tos64"),
            Expr::Depth => f.write_str("depth"),
            Expr::Counter { name, per_site: false } => write!(f, "${name}"),
            Expr::Counter { name, per_site: true } => write!(f, "${name}[site]"),
            Expr::Unary(UnOp::Not, e) => write!(f, "!{e}"),
            Expr::Unary(UnOp::Neg, e) => write!(f, "-{e}"),
            Expr::Binary(op, a, b) => {
                let sym = match op {
                    BinOp::Or => "||",
                    BinOp::And => "&&",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

/// The rendering kind of one `report` directive.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportKind {
    /// `top N table`: the table's sites as count rows labelled
    /// `func+pc`, highest count first (ties in code order), truncated to N.
    Top {
        /// Row limit.
        n: usize,
        /// Table counter name.
        table: String,
    },
    /// `total "label" a [+ b ...]`: one count row summing the named
    /// counters (tables sum across sites).
    Total {
        /// Row label.
        label: String,
        /// Counter names to sum.
        counters: Vec<String>,
    },
    /// `ratio "suffix" num / den`: per-site fraction rows
    /// `num / (num + den)` labelled `func+pc suffix`, in code order,
    /// skipping sites where both are zero.
    Ratio {
        /// Label suffix appended after the location.
        suffix: String,
        /// Numerator table.
        num: String,
        /// Denominator table (the "other" outcomes).
        den: String,
    },
    /// `perfunc table`: per-function fraction rows
    /// `sites with nonzero count / sites matched`, in function order.
    PerFunc {
        /// Table counter name.
        table: String,
    },
    /// `percent "label" table`: one float row,
    /// `100 * nonzero sites / matched sites` (100 when nothing matched).
    Percent {
        /// Row label.
        label: String,
        /// Table counter name.
        table: String,
    },
    /// `counters`: every scalar counter as a count row, in declaration
    /// order.
    Counters,
}

/// One `report "section" <kind>` directive; each appends a section to the
/// monitor's [`Report`](wizard_engine::Report) in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportDirective {
    /// Section name.
    pub section: String,
    /// How the section's rows are produced.
    pub kind: ReportKind,
}
