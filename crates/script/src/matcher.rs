//! The static matcher: resolves a rule's [`Selector`] to concrete
//! `(Location, opcode)` sites by walking the decoded bodies of a module's
//! locally-defined functions.
//!
//! Matching is entirely static — it happens once, at monitor attach — and
//! failures are descriptive: a selector that matches nothing reports the
//! opcodes the module *does* contain, and a `func[N]+PC` selector whose
//! `PC` is not an instruction boundary reports the nearest instruction
//! boundaries, disassembled.

use std::collections::{HashMap, HashSet};

use wizard_engine::Location;
use wizard_wasm::disasm;
use wizard_wasm::instr::InstrIter;
use wizard_wasm::module::Module;
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::validate;

use crate::ast::{Rule, Selector};
use crate::error::ScriptError;
use crate::parse::opcode_by_name;

/// One matched instrumentation site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// The location to probe.
    pub loc: Location,
    /// The opcode at that location (static — predicates over `op` fold
    /// against it).
    pub opcode: u8,
}

/// A module's decoded instruction inventory, built once per attach and
/// shared by every rule's match (decoding each body per rule would make
/// attach O(rules × module size)).
pub struct ModuleIndex {
    /// `(site, is_first_of_body, is_last_of_body)` in code order.
    instrs: Vec<(Site, bool, bool)>,
    /// `(func, pc)` of every loop header, from the validator's side
    /// metadata rather than re-matching the `loop` opcode syntactically —
    /// the semantic definition survives any future site reordering by
    /// the lowering pipeline.
    loop_headers: HashSet<(u32, u32)>,
}

impl ModuleIndex {
    /// Decodes all locally-defined function bodies.
    pub fn new(module: &Module) -> ModuleIndex {
        let meta = validate(module).expect("module was validated");
        let n_imp = module.num_imported_funcs();
        let mut out = Vec::new();
        let mut loop_headers = HashSet::new();
        for (i, f) in module.funcs.iter().enumerate() {
            let func = n_imp + i as u32;
            let start = out.len();
            for item in InstrIter::new(&f.body.code) {
                let instr = item.expect("module was validated");
                let site = Site { loc: Location { func, pc: instr.pc }, opcode: instr.op };
                let first = out.len() == start;
                out.push((site, first, false));
            }
            if let Some(last) = out.last_mut() {
                last.2 = true;
            }
            loop_headers.extend(meta.funcs[i].loop_headers.iter().map(|&pc| (func, pc)));
        }
        ModuleIndex { instrs: out, loop_headers }
    }

    /// `true` if the validator recorded `(func, pc)` as a loop header.
    pub fn is_loop_header(&self, func: u32, pc: u32) -> bool {
        self.loop_headers.contains(&(func, pc))
    }
}

/// Resolved opcode bytes of every mnemonic selector in a rule, computed
/// once per rule so per-site matching is a byte comparison, not a
/// 256-entry string scan.
fn mnemonic_bytes(selector: &Selector, out: &mut HashMap<String, u8>) {
    match selector {
        Selector::Opcode(name) => {
            if let Some(b) = opcode_by_name(name) {
                out.insert(name.clone(), b);
            }
        }
        Selector::Or(alts) => {
            for a in alts {
                mnemonic_bytes(a, out);
            }
        }
        _ => {}
    }
}

fn matches(
    selector: &Selector,
    mnemonics: &HashMap<String, u8>,
    index: &ModuleIndex,
    site: Site,
    first: bool,
    last: bool,
) -> bool {
    match selector {
        Selector::Any => true,
        Selector::Call => op::is_call(site.opcode),
        Selector::Branch => matches!(site.opcode, op::IF | op::BR_IF | op::BR_TABLE),
        Selector::Load => op::is_load(site.opcode),
        Selector::Store => op::is_store(site.opcode),
        Selector::LoopHeader => index.is_loop_header(site.loc.func, site.loc.pc),
        Selector::FuncEnter => first,
        Selector::FuncExit => site.opcode == op::RETURN || (last && site.opcode == op::END),
        Selector::Opcode(name) => mnemonics.get(name).is_some_and(|wanted| *wanted == site.opcode),
        Selector::At { func, pc } => site.loc == Location { func: *func, pc: *pc },
        Selector::Or(alts) => alts.iter().any(|a| matches(a, mnemonics, index, site, first, last)),
    }
}

/// Walks `selector` for `func[N]+PC` components, so location selectors can
/// be validated eagerly (range + boundary) with targeted diagnostics.
fn at_components(selector: &Selector, out: &mut Vec<(u32, u32)>) {
    match selector {
        Selector::At { func, pc } => out.push((*func, *pc)),
        Selector::Or(alts) => {
            for a in alts {
                at_components(a, out);
            }
        }
        _ => {}
    }
}

/// The distinct opcode mnemonics present in the module, in first-seen
/// order, truncated to `k` — the "nearest candidates" shown when a class
/// or mnemonic selector matches nothing.
fn present_opcodes(index: &ModuleIndex, k: usize) -> Vec<&'static str> {
    let mut seen = Vec::new();
    for (site, _, _) in &index.instrs {
        let name = op::name(site.opcode);
        if !seen.contains(&name) {
            seen.push(name);
            if seen.len() == k {
                break;
            }
        }
    }
    seen
}

/// Resolves a rule's selector against a module.
///
/// # Errors
///
/// * [`ScriptError::BadFunction`] — a `func[N]` component is imported or
///   out of range;
/// * [`ScriptError::NoMatch`] — the selector matched nothing; the detail
///   names nearest candidates (disassembled neighbours for a bad `+PC`,
///   the module's opcode inventory otherwise).
pub fn match_rule(module: &Module, rule: &Rule) -> Result<Vec<Site>, ScriptError> {
    match_rule_indexed(module, &ModuleIndex::new(module), rule)
}

/// [`match_rule`] over a pre-built [`ModuleIndex`] — the form multi-rule
/// callers use, paying one decode pass for the whole script.
///
/// # Errors
///
/// As [`match_rule`].
pub fn match_rule_indexed(
    module: &Module,
    index: &ModuleIndex,
    rule: &Rule,
) -> Result<Vec<Site>, ScriptError> {
    let n_imp = module.num_imported_funcs();
    let mut ats = Vec::new();
    at_components(&rule.selector, &mut ats);
    for (func, pc) in &ats {
        if *func < n_imp || *func >= module.num_funcs() {
            return Err(ScriptError::BadFunction { func: *func, num_funcs: module.num_funcs() });
        }
        let code = &module.funcs[(func - n_imp) as usize].body.code;
        let boundary = InstrIter::new(code).filter_map(Result::ok).any(|i| i.pc == *pc);
        if !boundary {
            let candidates: Vec<String> = disasm::nearest(code, *pc, 3)
                .into_iter()
                .map(|(p, text)| format!("func[{func}]+{p}: {text}"))
                .collect();
            return Err(ScriptError::NoMatch {
                rule: rule.text.clone(),
                detail: format!(
                    "+{pc} is not an instruction boundary; nearest candidates: {}",
                    candidates.join(", ")
                ),
            });
        }
    }

    let mut mnemonics = HashMap::new();
    mnemonic_bytes(&rule.selector, &mut mnemonics);
    let sites: Vec<Site> = index
        .instrs
        .iter()
        .filter(|(site, first, last)| {
            matches(&rule.selector, &mnemonics, index, *site, *first, *last)
        })
        .map(|(site, _, _)| *site)
        .collect();
    if sites.is_empty() {
        let present = present_opcodes(index, 8);
        return Err(ScriptError::NoMatch {
            rule: rule.text.clone(),
            detail: format!(
                "nearest candidates — opcodes present in this module: {}",
                present.join(", ")
            ),
        });
    }
    Ok(sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        f.local_get(0);
        mb.add_func("spin", f);
        let mut g = FuncBuilder::new(&[I32], &[I32]);
        g.local_get(0).call(0);
        mb.add_func("wrap", g);
        mb.build().unwrap()
    }

    fn sites_of(src: &str) -> Vec<Site> {
        let script = parse(src).unwrap();
        match_rule(&module(), &script.rules[0]).unwrap()
    }

    #[test]
    fn class_selectors_resolve() {
        assert!(sites_of("match * do inc a").len() > 10);
        assert_eq!(sites_of("match loop-header do inc a").len(), 1);
        assert_eq!(sites_of("match call do inc a").len(), 1);
        let branches = sites_of("match branch do inc a");
        assert!(!branches.is_empty());
        assert!(branches.iter().all(|s| matches!(s.opcode, op::IF | op::BR_IF | op::BR_TABLE)));
        // func:enter — one per local function, all at instruction 0.
        let enters = sites_of("match func:enter do inc a");
        assert_eq!(enters.len(), 2);
        assert!(enters.iter().all(|s| s.loc.pc == 0));
        // func:exit includes each body's final end.
        let exits = sites_of("match func:exit do inc a");
        assert_eq!(exits.len(), 2);
        assert!(exits.iter().all(|s| s.opcode == op::END));
    }

    #[test]
    fn loop_header_parity_between_metadata_and_syntax() {
        // The selector now resolves through the validator's loop-header
        // metadata; on unreordered code that must coincide with the
        // syntactic `loop` opcode definition it replaced, and the CFG
        // back-edge targets of actually-looping code must be a subset.
        let m = module();
        let meta = validate(&m).unwrap();
        let semantic: Vec<Site> = sites_of("match loop-header do inc a");
        let index = ModuleIndex::new(&m);
        let syntactic: Vec<Site> =
            index.instrs.iter().map(|(s, _, _)| *s).filter(|s| s.opcode == op::LOOP).collect();
        assert_eq!(semantic, syntactic);
        for s in &semantic {
            assert!(meta.funcs[s.loc.func as usize].loop_headers.contains(&s.loc.pc));
        }
        // CFG back-edge parity: every back-edge target is a loop header.
        for (i, f) in m.funcs.iter().enumerate() {
            for pc in wizard_analysis::cfg::Cfg::build(&f.body.code, &meta.funcs[i]).loop_headers {
                assert!(index.is_loop_header(i as u32, pc), "back edge to non-loop pc={pc}");
            }
        }
    }

    #[test]
    fn mnemonic_and_location_selectors() {
        let nops = sites_of("match nop do inc a");
        assert_eq!(nops.len(), 1);
        let at = sites_of("match func[0]+0 do inc a");
        assert_eq!(at.len(), 1);
        assert_eq!(at[0].loc, Location { func: 0, pc: 0 });
        let both = sites_of("match nop|call do inc a");
        assert_eq!(both.len(), 2);
    }

    #[test]
    fn no_match_reports_module_inventory() {
        let script = parse("match f64.sqrt do inc a").unwrap();
        let err = match_rule(&module(), &script.rules[0]).unwrap_err();
        match &err {
            ScriptError::NoMatch { detail, .. } => {
                assert!(detail.contains("opcodes present"), "{detail}");
                assert!(detail.contains("local.get"), "{detail}");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("matched no sites"));
    }

    #[test]
    fn bad_pc_reports_nearest_instructions() {
        let script = parse("match func[0]+1 do inc a").unwrap();
        let err = match_rule(&module(), &script.rules[0]).unwrap_err();
        match &err {
            ScriptError::NoMatch { detail, .. } => {
                assert!(detail.contains("not an instruction boundary"), "{detail}");
                assert!(detail.contains("func[0]+0"), "{detail}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bad_function_is_rejected() {
        let script = parse("match func[9]+0 do inc a").unwrap();
        assert!(matches!(
            match_rule(&module(), &script.rules[0]),
            Err(ScriptError::BadFunction { func: 9, .. })
        ));
    }
}
