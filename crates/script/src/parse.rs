//! The wizard-script parser and script-level validator.
//!
//! Grammar (whitespace-insensitive; `#`/`//` comments):
//!
//! ```text
//! script   := item*
//! item     := "monitor" STRING
//!           | "match" selector ["once"] ["when" expr] "do" actions
//!           | "report" STRING rkind
//! selector := alt ("|" alt)*
//! alt      := "*" | "call" | "branch" | "load" | "store" | "loop-header"
//!           | "func" ":" ("enter" | "exit")
//!           | "func" "[" NUM "]" "+" NUM
//!           | MNEMONIC                      (e.g. i32.add, br, memory.grow)
//! actions  := action ((";" | ",")? action)*
//! action   := "inc" NAME ["[" "site" "]"] | "trace"
//! rkind    := "top" NUM NAME
//!           | "total" STRING NAME ("+" NAME)*
//!           | "ratio" STRING NAME "/" NAME
//!           | "perfunc" NAME
//!           | "percent" STRING NAME
//!           | "counters"
//! expr     := precedence climbing over || && (== != < <= > >=) (+ -) (* / %)
//!             with unary ! and -, atoms: NUM, pc, func, op, tos, tos64,
//!             depth, $NAME, $NAME[site], MNEMONIC (an opcode constant),
//!             "(" expr ")"
//! ```
//!
//! Parsing also validates everything that does not need a module: opcode
//! mnemonics must exist, a counter must be consistently scalar or
//! per-site, and report directives must reference counters of the right
//! shape.

use std::collections::HashMap;

use wizard_wasm::opcodes as op;

use crate::ast::{Action, BinOp, Expr, ReportDirective, ReportKind, Rule, Script, Selector, UnOp};
use crate::error::ScriptError;
use crate::lex::{lex, Tok, Token};

/// Resolves an opcode mnemonic (as printed by `wizard_wasm::opcodes::name`)
/// to its opcode byte.
pub fn opcode_by_name(name: &str) -> Option<u8> {
    (0u8..=0xff).find(|&b| op::is_valid(b) && op::name(b) == name)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].kind
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ScriptError {
        let t = &self.toks[self.pos];
        ScriptError::Parse { line: t.line, col: t.col, msg: msg.into() }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ScriptError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    fn expect_str(&mut self, what: &str) -> Result<String, ScriptError> {
        match self.bump() {
            Tok::Str(s) => Ok(s),
            other => Err(self.error(format!("expected a quoted {what}, found {other}"))),
        }
    }

    fn expect_num(&mut self, what: &str) -> Result<i64, ScriptError> {
        match self.bump() {
            Tok::Num(v) => Ok(v),
            other => Err(self.error(format!("expected {what}, found {other}"))),
        }
    }

    fn expect_tok(&mut self, tok: &Tok) -> Result<(), ScriptError> {
        let got = self.bump();
        if got == *tok {
            Ok(())
        } else {
            Err(self.error(format!("expected {tok}, found {got}")))
        }
    }

    /// Consumes the token if it matches.
    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    // ---- selectors ----

    fn selector_alt(&mut self) -> Result<Selector, ScriptError> {
        if self.eat(&Tok::Star) {
            return Ok(Selector::Any);
        }
        let name = self.expect_ident("a selector")?;
        Ok(match name.as_str() {
            "call" => Selector::Call,
            "branch" => Selector::Branch,
            "load" => Selector::Load,
            "store" => Selector::Store,
            "loop" if self.eat(&Tok::Minus) => {
                let part = self.expect_ident("`header` after `loop-`")?;
                if part != "header" {
                    return Err(self.error(format!("expected `loop-header`, found `loop-{part}`")));
                }
                Selector::LoopHeader
            }
            "func" if self.eat(&Tok::Colon) => {
                let which = self.expect_ident("`enter` or `exit` after `func:`")?;
                match which.as_str() {
                    "enter" => Selector::FuncEnter,
                    "exit" => Selector::FuncExit,
                    other => {
                        return Err(self.error(format!(
                            "expected `func:enter` or `func:exit`, found `func:{other}`"
                        )))
                    }
                }
            }
            "func" if self.peek() == &Tok::LBracket => {
                self.bump();
                let func = self.expect_num("a function index")?;
                self.expect_tok(&Tok::RBracket)?;
                self.expect_tok(&Tok::Plus)?;
                let pc = self.expect_num("a byte offset")?;
                if func < 0 || pc < 0 || func > i64::from(u32::MAX) || pc > i64::from(u32::MAX) {
                    return Err(self.error("function index / pc out of range"));
                }
                Selector::At { func: func as u32, pc: pc as u32 }
            }
            mnemonic => {
                if opcode_by_name(mnemonic).is_none() {
                    return Err(ScriptError::UnknownOpcode { name: mnemonic.to_string() });
                }
                Selector::Opcode(mnemonic.to_string())
            }
        })
    }

    fn selector(&mut self) -> Result<Selector, ScriptError> {
        let first = self.selector_alt()?;
        if self.peek() != &Tok::Pipe {
            return Ok(first);
        }
        let mut alts = vec![first];
        while self.eat(&Tok::Pipe) {
            alts.push(self.selector_alt()?);
        }
        Ok(Selector::Or(alts))
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ScriptError> {
        self.expr_or()
    }

    fn expr_or(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.expr_and()?;
        while self.eat(&Tok::OrOr) {
            let rhs = self.expr_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_and(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.expr_cmp()?;
        while self.eat(&Tok::AndAnd) {
            let rhs = self.expr_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn expr_cmp(&mut self) -> Result<Expr, ScriptError> {
        let lhs = self.expr_add()?;
        let op = match self.peek() {
            Tok::EqEq => BinOp::Eq,
            Tok::NotEq => BinOp::Ne,
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.expr_add()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn expr_add(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.expr_mul()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_mul()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, ScriptError> {
        let mut lhs = self.expr_unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.expr_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn expr_unary(&mut self) -> Result<Expr, ScriptError> {
        if self.eat(&Tok::Bang) {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.expr_unary()?)));
        }
        if self.eat(&Tok::Minus) {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.expr_unary()?)));
        }
        self.expr_atom()
    }

    fn expr_atom(&mut self) -> Result<Expr, ScriptError> {
        if self.eat(&Tok::LParen) {
            let e = self.expr()?;
            self.expect_tok(&Tok::RParen)?;
            return Ok(e);
        }
        if self.eat(&Tok::Dollar) {
            let name = self.expect_ident("a counter name after `$`")?;
            let per_site = self.site_suffix()?;
            return Ok(Expr::Counter { name, per_site });
        }
        match self.bump() {
            Tok::Num(v) => Ok(Expr::Const(v)),
            Tok::Ident(s) => Ok(match s.as_str() {
                "pc" => Expr::Pc,
                "func" => Expr::Func,
                "op" => Expr::Op,
                "tos" => Expr::Tos,
                "tos64" => Expr::Tos64,
                "depth" => Expr::Depth,
                mnemonic => match opcode_by_name(mnemonic) {
                    Some(b) => Expr::Const(i64::from(b)),
                    None => {
                        return Err(self.error(format!(
                            "unknown identifier `{mnemonic}` \
                             (counters are read with `${mnemonic}`)"
                        )))
                    }
                },
            }),
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    /// Parses an optional `[site]` suffix.
    fn site_suffix(&mut self) -> Result<bool, ScriptError> {
        if !self.eat(&Tok::LBracket) {
            return Ok(false);
        }
        let kw = self.expect_ident("`site`")?;
        if kw != "site" {
            return Err(self.error(format!("expected `site`, found `{kw}`")));
        }
        self.expect_tok(&Tok::RBracket)?;
        Ok(true)
    }

    // ---- items ----

    fn actions(&mut self) -> Result<Vec<Action>, ScriptError> {
        let mut out = Vec::new();
        loop {
            let kw = self.expect_ident("an action (`inc <counter>` or `trace`)")?;
            match kw.as_str() {
                "inc" => {
                    let counter = self.expect_ident("a counter name")?;
                    let per_site = self.site_suffix()?;
                    out.push(Action::Inc { counter, per_site });
                }
                "trace" => out.push(Action::Trace),
                other => {
                    return Err(self.error(format!("expected `inc` or `trace`, found `{other}`")))
                }
            }
            let _ = self.eat(&Tok::Semi) || self.eat(&Tok::Comma);
            if !matches!(self.peek(), Tok::Ident(s) if s == "inc" || s == "trace") {
                return Ok(out);
            }
        }
    }

    fn rule(&mut self) -> Result<Rule, ScriptError> {
        let selector = self.selector()?;
        let once = self.eat_kw("once");
        let when = if self.eat_kw("when") { Some(self.expr()?) } else { None };
        if !self.eat_kw("do") {
            return Err(self.error("expected `do` after the selector"));
        }
        let actions = self.actions()?;
        let mut text = format!("match {selector}");
        if once {
            text.push_str(" once");
        }
        if let Some(w) = &when {
            text.push_str(&format!(" when {w}"));
        }
        Ok(Rule { selector, once, when, actions, text })
    }

    fn report(&mut self) -> Result<ReportDirective, ScriptError> {
        let section = self.expect_str("section name")?;
        let kw = self.expect_ident("a report kind")?;
        let kind = match kw.as_str() {
            "top" => {
                let n = self.expect_num("a row limit")?;
                if n <= 0 {
                    return Err(self.error("`top` needs a positive row limit"));
                }
                ReportKind::Top { n: n as usize, table: self.expect_ident("a table counter")? }
            }
            "total" => {
                let label = self.expect_str("row label")?;
                let mut counters = vec![self.expect_ident("a counter")?];
                while self.eat(&Tok::Plus) {
                    counters.push(self.expect_ident("a counter")?);
                }
                ReportKind::Total { label, counters }
            }
            "ratio" => {
                let suffix = self.expect_str("label suffix")?;
                let num = self.expect_ident("the numerator table")?;
                self.expect_tok(&Tok::Slash)?;
                let den = self.expect_ident("the denominator table")?;
                ReportKind::Ratio { suffix, num, den }
            }
            "perfunc" => ReportKind::PerFunc { table: self.expect_ident("a table counter")? },
            "percent" => {
                let label = self.expect_str("row label")?;
                ReportKind::Percent { label, table: self.expect_ident("a table counter")? }
            }
            "counters" => ReportKind::Counters,
            other => {
                return Err(self.error(format!(
                    "unknown report kind `{other}` \
                     (expected top/total/ratio/perfunc/percent/counters)"
                )))
            }
        };
        Ok(ReportDirective { section, kind })
    }

    fn script(&mut self) -> Result<Script, ScriptError> {
        let mut script = Script::default();
        loop {
            match self.peek().clone() {
                Tok::Eof => break,
                Tok::Ident(kw) => {
                    self.bump();
                    match kw.as_str() {
                        "monitor" => script.name = Some(self.expect_str("monitor name")?),
                        "match" => script.rules.push(self.rule()?),
                        "report" => script.reports.push(self.report()?),
                        other => {
                            return Err(self.error(format!(
                                "expected `monitor`, `match` or `report`, found `{other}`"
                            )))
                        }
                    }
                }
                other => {
                    return Err(self
                        .error(format!("expected `monitor`, `match` or `report`, found {other}")))
                }
            }
        }
        validate(&script)?;
        Ok(script)
    }
}

/// The declared shape of every counter: `(name, per_site)` in first-use
/// order, as incremented by the script's rules.
pub fn counter_shapes(script: &Script) -> Vec<(String, bool)> {
    let mut order: Vec<(String, bool)> = Vec::new();
    for rule in &script.rules {
        for action in &rule.actions {
            if let Action::Inc { counter, per_site } = action {
                if !order.iter().any(|(n, _)| n == counter) {
                    order.push((counter.clone(), *per_site));
                }
            }
        }
    }
    order
}

/// Script-level (module-independent) validation; see the module docs.
fn validate(script: &Script) -> Result<(), ScriptError> {
    let mut shapes: HashMap<String, bool> = HashMap::new();
    fn check(
        shapes: &mut HashMap<String, bool>,
        name: &str,
        per_site: bool,
    ) -> Result<(), ScriptError> {
        match shapes.get(name) {
            Some(&existing) if existing != per_site => {
                Err(ScriptError::CounterKindMismatch { name: name.to_string() })
            }
            _ => {
                shapes.insert(name.to_string(), per_site);
                Ok(())
            }
        }
    }
    // Shape consistency covers reads and writes alike; report directives
    // additionally require a counter some rule actually *increments* —
    // a read-only counter is forever zero and reporting it is a bug.
    let mut incremented: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for rule in &script.rules {
        for action in &rule.actions {
            match action {
                Action::Inc { counter, per_site } => {
                    check(&mut shapes, counter, *per_site)?;
                    incremented.insert(counter);
                }
                Action::Trace => {
                    // `trace` lowers onto the streaming tracer's branch
                    // probe, whose stream must stay byte-identical to the
                    // hand-written monitor's: only a plain `match branch`
                    // rule guarantees that (every branch site, no
                    // predicate filtering, no self-removal).
                    let bad = |msg: &str| ScriptError::BadTrace {
                        rule: rule.text.clone(),
                        msg: msg.to_string(),
                    };
                    if rule.selector != Selector::Branch {
                        return Err(bad("`trace` requires the `branch` selector"));
                    }
                    if rule.when.is_some() {
                        return Err(bad("`trace` cannot be combined with `when`"));
                    }
                    if rule.once {
                        return Err(bad("`trace` cannot be combined with `once`"));
                    }
                }
            }
        }
        if let Some(w) = &rule.when {
            walk_counters(w, &mut |name, per_site| check(&mut shapes, name, per_site))?;
        }
    }

    let shape_of = |name: &str| shapes.get(name).copied();
    for r in &script.reports {
        let bad = |msg: String| ScriptError::BadReport { section: r.section.clone(), msg };
        let need = |name: &str, table: bool| -> Result<(), ScriptError> {
            if !incremented.contains(name) {
                return Err(bad(format!("counter `{name}` is never incremented by any rule")));
            }
            match shape_of(name) {
                Some(s) if table && !s => {
                    Err(bad(format!("counter `{name}` is a scalar; this report needs a table")))
                }
                _ => Ok(()),
            }
        };
        match &r.kind {
            ReportKind::Top { table, .. }
            | ReportKind::PerFunc { table }
            | ReportKind::Percent { table, .. } => need(table, true)?,
            ReportKind::Ratio { num, den, .. } => {
                need(num, true)?;
                need(den, true)?;
            }
            ReportKind::Total { counters, .. } => {
                for c in counters {
                    need(c, false)?;
                }
            }
            ReportKind::Counters => {}
        }
    }
    Ok(())
}

fn walk_counters(
    e: &Expr,
    f: &mut impl FnMut(&str, bool) -> Result<(), ScriptError>,
) -> Result<(), ScriptError> {
    match e {
        Expr::Counter { name, per_site } => f(name, *per_site),
        Expr::Unary(_, a) => walk_counters(a, f),
        Expr::Binary(_, a, b) => {
            walk_counters(a, f)?;
            walk_counters(b, f)
        }
        _ => Ok(()),
    }
}

/// Parses and validates a script.
///
/// # Errors
///
/// Returns [`ScriptError`] on syntax errors, unknown opcode mnemonics,
/// inconsistent counter shapes, or report directives referencing missing
/// counters. Matching against a concrete module happens later, at
/// monitor attach.
pub fn parse(source: &str) -> Result<Script, ScriptError> {
    let toks = lex(source)?;
    Parser { toks, pos: 0 }.script()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_hotness_script() {
        let s = parse(
            r#"
            monitor "hotness"
            match * do inc exec[site]
            report "top locations" top 20 exec
            report "summary" total "total instruction executions" exec
            "#,
        )
        .unwrap();
        assert_eq!(s.title(), "hotness");
        assert_eq!(s.rules.len(), 1);
        assert_eq!(s.rules[0].selector, Selector::Any);
        assert_eq!(
            s.rules[0].actions,
            vec![Action::Inc { counter: "exec".into(), per_site: true }]
        );
        assert_eq!(s.reports.len(), 2);
    }

    #[test]
    fn parses_selectors_and_predicates() {
        let s = parse(
            "match branch when op == br_table || tos != 0 do inc t[site]\n\
             match load|store do inc mem\n\
             match loop-header do inc loops\n\
             match func:enter do inc entries\n\
             match func[0]+12 once do inc there\n\
             match i32.div_s do inc divs",
        )
        .unwrap();
        assert_eq!(s.rules.len(), 6);
        assert_eq!(s.rules[1].selector, Selector::Or(vec![Selector::Load, Selector::Store]));
        assert_eq!(s.rules[2].selector, Selector::LoopHeader);
        assert_eq!(s.rules[3].selector, Selector::FuncEnter);
        assert_eq!(s.rules[4].selector, Selector::At { func: 0, pc: 12 });
        assert!(s.rules[4].once);
        assert_eq!(s.rules[5].selector, Selector::Opcode("i32.div_s".into()));
        // br_table folded to its opcode byte.
        let w = s.rules[0].when.as_ref().unwrap().to_string();
        assert_eq!(w, format!("((op == {}) || (tos != 0))", wizard_wasm::opcodes::BR_TABLE));
    }

    #[test]
    fn expression_precedence() {
        let s = parse("match * when 1 + 2 * 3 == 7 && !0 do inc a").unwrap();
        let w = s.rules[0].when.as_ref().unwrap().to_string();
        assert_eq!(w, "(((1 + (2 * 3)) == 7) && !0)");
    }

    #[test]
    fn rejects_unknown_names_and_mismatches() {
        assert!(matches!(parse("match i33.add do inc a"), Err(ScriptError::UnknownOpcode { .. })));
        assert!(matches!(
            parse("match * do inc a; inc a[site]"),
            Err(ScriptError::CounterKindMismatch { .. })
        ));
        assert!(matches!(
            parse("match * do inc a\nreport \"s\" top 5 missing"),
            Err(ScriptError::BadReport { .. })
        ));
        assert!(matches!(
            parse("match * do inc a\nreport \"s\" top 5 a"),
            Err(ScriptError::BadReport { .. })
        ));
        assert!(parse("match * when nonsense do inc a").is_err());
        assert!(parse("monitor 5").is_err());
        // A counter that is only *read* in a predicate is never
        // incremented: reporting it is rejected.
        assert!(matches!(
            parse("match * when $ghost == 0 do inc a\nreport \"s\" total \"g\" ghost"),
            Err(ScriptError::BadReport { .. })
        ));
    }

    #[test]
    fn multiple_actions_and_separators() {
        let s = parse("match call do inc a; inc b, inc c inc d").unwrap();
        assert_eq!(s.rules[0].actions.len(), 4);
    }

    #[test]
    fn counter_shape_listing() {
        let s = parse("match * do inc a[site]; inc b\nmatch call do inc a[site]").unwrap();
        assert_eq!(counter_shapes(&s), vec![("a".to_string(), true), ("b".to_string(), false)]);
    }
}
