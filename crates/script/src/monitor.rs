//! [`ScriptMonitor`]: a compiled script as a standard lifecycle
//! [`Monitor`] — attach compiles (match → classify → batch-install),
//! detach removes every installed probe in one pass (restoring the
//! zero-overhead baseline), and [`Monitor::report`] renders the script's
//! `report` directives over its counter bank.

use std::cell::RefCell;
use std::collections::HashMap;
use std::io;
use std::rc::Rc;

use wizard_engine::{
    InstrumentationCtx, Location, Monitor, ProbeBatch, ProbeError, ProbeKind, Process, Report,
};
use wizard_trace::{
    BranchTraceProbe, MemorySink, SiteDict, TraceCounters, TraceSink, TraceWriter, WriterRef,
};
use wizard_wasm::module::Module;

use wizard_analysis::{ModuleFacts, TosFact};

use crate::ast::{Action, ReportKind, Script};
use crate::error::ScriptError;
use crate::lower::{lower_rule_with_facts, materialize_rule, CounterBank, LoweredProbe, SiteFacts};
use crate::matcher::{match_rule_indexed, ModuleIndex, Site};
use crate::parse;

/// One installed probe, as the compiler classified it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredSite {
    /// Index of the originating rule within the script.
    pub rule: usize,
    /// The probed location.
    pub loc: Location,
    /// The probe shape the rule lowered to at this site.
    pub kind: ProbeKind,
    /// The residual predicate after static folding (`None` if the probe
    /// fires unconditionally).
    pub residual: Option<String>,
}

/// Attach-time state: the counter bank plus compilation metadata.
struct Attached {
    bank: CounterBank,
    lowering: Vec<LoweredSite>,
    labels: HashMap<u32, String>,
    matched_sites: usize,
    dropped_sites: usize,
    warnings: Vec<String>,
}

/// Live trace-capture state, present while a script with a `trace`
/// action is attached (the writer moves out at detach).
struct TraceState {
    writer: Option<WriterRef>,
    dict: SiteDict,
    final_counters: TraceCounters,
    error: Option<io::Error>,
}

/// A [`Monitor`] executing a wizard-script program.
///
/// The script is compiled against the process's module during
/// [`Monitor::on_attach`]; compilation failures (a rule matching nothing,
/// a bad location) reject the attach with
/// [`ProbeError::MonitorRejected`] carrying the script diagnostic, and
/// the engine rolls back any probes already inserted.
pub struct ScriptMonitor {
    script: Script,
    attached: Option<Attached>,
    use_facts: bool,
    trace_sink: Option<Box<dyn TraceSink>>,
    trace_memory: Option<MemorySink>,
    trace: Option<TraceState>,
}

impl ScriptMonitor {
    /// Creates a monitor over a parsed script.
    ///
    /// Attach-time lowering consults per-site dataflow facts (stack
    /// shape and top-of-stack constancy from [`wizard_analysis`]) to
    /// fold `tos` predicates and drop probes at statically-unreachable
    /// sites; disable with [`ScriptMonitor::without_facts`].
    pub fn new(script: Script) -> ScriptMonitor {
        ScriptMonitor {
            script,
            attached: None,
            use_facts: true,
            trace_sink: None,
            trace_memory: None,
            trace: None,
        }
    }

    /// Disables fact-driven lowering: every site compiles exactly as if
    /// no static analysis ran. Reports are identical either way — facts
    /// only change *how* a probe observes, never *what* it counts.
    #[must_use]
    pub fn without_facts(mut self) -> ScriptMonitor {
        self.use_facts = false;
        self
    }

    /// Parses `source` and creates the monitor.
    ///
    /// # Errors
    ///
    /// Returns [`ScriptError`] as [`parse::parse`].
    pub fn from_source(source: &str) -> Result<ScriptMonitor, ScriptError> {
        Ok(ScriptMonitor::new(parse::parse(source)?))
    }

    /// The script this monitor executes.
    pub fn script(&self) -> &Script {
        &self.script
    }

    /// The compiled probe classification, one entry per installed probe
    /// (empty before the first attach).
    pub fn lowering(&self) -> &[LoweredSite] {
        self.attached.as_ref().map_or(&[], |a| &a.lowering)
    }

    /// `(count, operand, generic)` installed-probe totals — the assertion
    /// surface for "this script lowered to the intrinsified fast path".
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for l in self.lowering() {
            match l.kind {
                ProbeKind::Count => c.0 += 1,
                ProbeKind::Operand => c.1 += 1,
                ProbeKind::Generic => c.2 += 1,
            }
        }
        c
    }

    /// Sites matched by some rule (before predicate folding).
    pub fn matched_sites(&self) -> usize {
        self.attached.as_ref().map_or(0, |a| a.matched_sites)
    }

    /// Rule-site pairs whose predicate folded to `false` — instrumentation
    /// the compiler proved away.
    pub fn dropped_sites(&self) -> usize {
        self.attached.as_ref().map_or(0, |a| a.dropped_sites)
    }

    /// The current value of a counter (scalar value, or table sum).
    pub fn counter(&self, name: &str) -> u64 {
        self.attached.as_ref().map_or(0, |a| a.bank.sum(name))
    }

    /// Attach-time diagnostics: rules whose every matched site the
    /// analysis proved unreachable (the rule installs nothing and its
    /// counters stay zero), in the same spirit as the matcher's
    /// nearest-candidate hints.
    pub fn warnings(&self) -> &[String] {
        self.attached.as_ref().map_or(&[], |a| &a.warnings)
    }

    /// Streams `trace` actions to `sink` instead of the default internal
    /// [`MemorySink`] (e.g. a `FileSink` for long captures). The sink is
    /// consumed by the first attach; a re-attach falls back to a fresh
    /// in-memory sink.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> ScriptMonitor {
        self.trace_sink = Some(sink);
        self
    }

    /// The captured trace stream for scripts with a `trace` action and
    /// the default in-memory sink. Complete once detached; `None` when
    /// nothing traced or an external sink was supplied.
    pub fn trace_data(&self) -> Option<Vec<u8>> {
        self.trace_memory.as_ref().map(MemorySink::data)
    }

    /// The trace site dictionary built at attach (`None` when the script
    /// has no `trace` action or before the first attach).
    pub fn trace_dict(&self) -> Option<&SiteDict> {
        self.trace.as_ref().map(|t| &t.dict)
    }

    /// Trace writer counters (all zero when the script has no `trace`
    /// action); final once detached.
    pub fn trace_counters(&self) -> TraceCounters {
        match &self.trace {
            Some(t) => match &t.writer {
                Some(w) => w.borrow().counters(),
                None => t.final_counters,
            },
            None => TraceCounters::default(),
        }
    }

    /// The first trace-sink error hit during the stream, if any (taken
    /// at detach; probe fire paths cannot propagate errors).
    pub fn trace_error(&self) -> Option<&io::Error> {
        self.trace.as_ref().and_then(|t| t.error.as_ref())
    }
}

/// Maps an analysis fact about the stack *before* a site to the
/// lowering-facts shape `lower_rule_with_facts` consumes.
fn site_facts(fact: TosFact) -> SiteFacts {
    match fact {
        TosFact::Unreachable => SiteFacts { unreachable: true, ..SiteFacts::default() },
        TosFact::Empty => SiteFacts { stack_empty: true, ..SiteFacts::default() },
        TosFact::Const(bits) => SiteFacts { tos_const: Some(bits), ..SiteFacts::default() },
        TosFact::Unknown => SiteFacts::default(),
    }
}

fn func_label(module: &Module, func: u32) -> String {
    module.func_name(func).map_or_else(|| format!("func[{func}]"), ToString::to_string)
}

impl Monitor for ScriptMonitor {
    fn name(&self) -> &'static str {
        "script"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        // Match and lower every rule against this module.
        let mut bank = CounterBank::default();
        let mut lowered: Vec<LoweredProbe> = Vec::new();
        let mut matched_sites = 0;
        let mut dropped_sites = 0;
        let mut labels = HashMap::new();
        let mut warnings = Vec::new();
        let mut trace_sites: Vec<Site> = Vec::new();
        {
            let module = ctx.module();
            let index = ModuleIndex::new(module);
            let facts = self.use_facts.then(|| ModuleFacts::compute(module));
            // Phase 1: match every rule and materialize every counter
            // cell, so predicate reads of a table resolve to the live
            // cells even when the incrementing rule comes later.
            let mut matched: Vec<Vec<Site>> = Vec::with_capacity(self.script.rules.len());
            for rule in &self.script.rules {
                let sites = match_rule_indexed(module, &index, rule)?;
                matched_sites += sites.len();
                for s in &sites {
                    labels.entry(s.loc.func).or_insert_with(|| func_label(module, s.loc.func));
                }
                materialize_rule(rule, &sites, &mut bank);
                if trace_sites.is_empty() && rule.actions.contains(&Action::Trace) {
                    // Every `trace` rule is a plain `match branch`
                    // (validation enforces it), so all of them match the
                    // same code-order site list — identical to the one
                    // `StreamingTraceMonitor` enumerates itself, which is
                    // what keeps the two streams byte-identical. Taking
                    // the first rule's sites also means several trace
                    // rules install one probe per site, not duplicates.
                    trace_sites = sites.clone();
                }
                matched.push(sites);
            }
            // Phase 2: classify and lower, consulting the per-site facts.
            for (i, (rule, sites)) in self.script.rules.iter().zip(&matched).enumerate() {
                let site_facts: Vec<SiteFacts> = facts.as_ref().map_or_else(Vec::new, |mf| {
                    sites.iter().map(|s| site_facts(mf.at(s.loc.func, s.loc.pc))).collect()
                });
                if !sites.is_empty()
                    && !site_facts.is_empty()
                    && site_facts.iter().all(|f| f.unreachable)
                {
                    warnings.push(format!(
                        "rule {i} (`{}`) matches only statically-unreachable sites; \
                         all {} probes dropped and its counters will stay zero",
                        rule.text,
                        sites.len()
                    ));
                }
                lowered.extend(lower_rule_with_facts(
                    i,
                    rule,
                    sites,
                    &site_facts,
                    &mut bank,
                    &mut dropped_sites,
                ));
            }
        }

        // Install the whole probe set in one invalidation pass, then wire
        // up the self-removal ids of `once` probes.
        let mut batch = ProbeBatch::new();
        for p in &lowered {
            batch.add_local(p.loc.func, p.loc.pc, Rc::clone(&p.probe));
        }
        // `trace` rules ride the same batch: a branch-outcome probe per
        // matched site feeding one writer over the monitor's sink.
        if !trace_sites.is_empty() {
            let dict = SiteDict::from_locations(trace_sites.iter().map(|s| s.loc));
            let sink = self.trace_sink.take().unwrap_or_else(|| {
                let mem = MemorySink::new();
                self.trace_memory = Some(mem.clone());
                Box::new(mem)
            });
            let writer: WriterRef = Rc::new(RefCell::new(TraceWriter::new(&dict, sink)));
            for (id, site) in trace_sites.iter().enumerate() {
                batch.add_local_val(
                    site.loc.func,
                    site.loc.pc,
                    BranchTraceProbe::new(site.opcode, id as u32, Rc::clone(&writer)),
                );
            }
            self.trace = Some(TraceState {
                writer: Some(writer),
                dict,
                final_counters: TraceCounters::default(),
                error: None,
            });
        }
        let ids = match ctx.apply_batch(batch) {
            Ok(ids) => ids,
            Err(e) => {
                // The engine rolled the batch back; drop the half-built
                // trace state so a later attach starts clean.
                self.trace = None;
                return Err(e);
            }
        };
        let mut lowering = Vec::with_capacity(lowered.len());
        for (p, id) in lowered.into_iter().zip(ids) {
            if let Some(cell) = &p.once_id {
                cell.set(Some(id));
            }
            lowering.push(LoweredSite {
                rule: p.rule,
                loc: p.loc,
                kind: p.kind,
                residual: p.residual,
            });
        }
        self.attached =
            Some(Attached { bank, lowering, labels, matched_sites, dropped_sites, warnings });
        Ok(())
    }

    fn on_detach(&mut self, process: &mut Process) {
        let Some(t) = &mut self.trace else { return };
        if let Some(writer) = t.writer.take() {
            let mut writer = writer.borrow_mut();
            match writer.finish() {
                Ok(counters) => t.final_counters = counters,
                Err(e) => {
                    t.final_counters = writer.counters();
                    t.error = Some(e);
                }
            }
            process.record_trace(t.final_counters.events, t.final_counters.bytes);
        }
    }

    fn report(&self) -> Report {
        let mut r = Report::new(self.script.title().to_string());
        let Some(a) = &self.attached else {
            return r;
        };
        let label = |loc: &Location| {
            a.labels.get(&loc.func).map_or_else(|| format!("func[{}]", loc.func), Clone::clone)
        };
        for directive in &self.script.reports {
            // Directives naming the same section append to it, so e.g.
            // two `report "summary" total …` lines build one summary.
            let section = match r.sections.iter().position(|s| s.name == directive.section) {
                Some(i) => &mut r.sections[i],
                None => r.section(directive.section.clone()),
            };
            match &directive.kind {
                ReportKind::Top { n, table } => {
                    let Some(t) = a.bank.table(table) else { continue };
                    let mut rows: Vec<(Location, u64)> =
                        t.iter().map(|(loc, c)| (*loc, c.get())).collect();
                    rows.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
                    for (loc, count) in rows.into_iter().take(*n) {
                        section.count(format!("{}+{}", label(&loc), loc.pc), count);
                    }
                }
                ReportKind::Total { label, counters } => {
                    section.count(label.clone(), counters.iter().map(|c| a.bank.sum(c)).sum());
                }
                ReportKind::Ratio { suffix, num, den } => {
                    let empty = std::collections::BTreeMap::new();
                    let tn = a.bank.table(num).unwrap_or(&empty);
                    let td = a.bank.table(den).unwrap_or(&empty);
                    let mut locs: Vec<Location> = tn.keys().chain(td.keys()).copied().collect();
                    locs.sort_unstable();
                    locs.dedup();
                    for loc in locs {
                        let x = tn.get(&loc).map_or(0, |c| c.get());
                        let y = td.get(&loc).map_or(0, |c| c.get());
                        if x + y == 0 {
                            continue;
                        }
                        section.fraction(format!("{}+{} {suffix}", label(&loc), loc.pc), x, x + y);
                    }
                }
                ReportKind::PerFunc { table } => {
                    let Some(t) = a.bank.table(table) else { continue };
                    let mut per: std::collections::BTreeMap<u32, (u64, u64)> =
                        std::collections::BTreeMap::new();
                    for (loc, c) in t {
                        let e = per.entry(loc.func).or_insert((0, 0));
                        e.1 += 1;
                        if c.get() > 0 {
                            e.0 += 1;
                        }
                    }
                    for (func, (covered, total)) in per {
                        section.fraction(label(&Location { func, pc: 0 }), covered, total);
                    }
                }
                ReportKind::Percent { label, table } => {
                    let (mut covered, mut total) = (0u64, 0u64);
                    if let Some(t) = a.bank.table(table) {
                        for c in t.values() {
                            total += 1;
                            if c.get() > 0 {
                                covered += 1;
                            }
                        }
                    }
                    let pct =
                        if total == 0 { 100.0 } else { 100.0 * covered as f64 / total as f64 };
                    section.float(label.clone(), pct);
                }
                ReportKind::Counters => {
                    for (name, value) in a.bank.scalars() {
                        section.count(name, value);
                    }
                }
            }
        }
        if let Some(t) = &self.trace {
            let c = self.trace_counters();
            let s = r.section("trace");
            s.count("sites", t.dict.len() as u64);
            s.count("events", c.events);
            s.count("bytes", c.bytes);
            if let Some(e) = &t.error {
                s.text("sink error", e.to_string());
            }
        }
        r
    }
}

impl core::fmt::Debug for ScriptMonitor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ScriptMonitor")
            .field("title", &self.script.title())
            .field("rules", &self.script.rules.len())
            .field("attached", &self.attached.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn sum_process(config: EngineConfig) -> Process {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("sum", f);
        Process::new(mb.build().unwrap(), config, &Linker::new()).unwrap()
    }

    #[test]
    fn counter_script_counts_and_intrinsifies() {
        let src = "monitor \"demo\"\n\
                   match * do inc exec[site]\n\
                   match loop-header do inc loops\n\
                   report \"summary\" total \"execs\" exec\n\
                   report \"summary\" total \"loop headers\" loops";
        for config in [EngineConfig::interpreter(), EngineConfig::jit(), EngineConfig::tiered()] {
            let mut p = sum_process(config);
            let m = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).unwrap();
            // Counter-only scripts lower exclusively to Count probes...
            let (count, operand, generic) = m.borrow().kind_counts();
            assert!(count > 10);
            assert_eq!((operand, generic), (0, 0));
            // ...and the engine agrees, site by site (a site can carry
            // several probes when several rules match it).
            for l in m.borrow().lowering() {
                let kinds = p.probe_kinds_at(l.loc.func, l.loc.pc);
                assert!(!kinds.is_empty(), "no probe installed at {}", l.loc);
                assert!(kinds.iter().all(|k| *k == ProbeKind::Count), "at {}: {kinds:?}", l.loc);
            }
            p.invoke_export("sum", &[Value::I32(10)]).unwrap();
            assert_eq!(m.borrow().counter("loops"), 11, "entry + 10 backedges");
            assert!(m.borrow().counter("exec") > 50);
            let r = m.report();
            assert_eq!(r.title, "demo");
            assert_eq!(r.get("summary").unwrap().count_of("loop headers"), Some(11));
        }
    }

    #[test]
    fn predicate_folding_drops_and_specializes() {
        let src = "match * when op == br_if && tos == 0 do inc fall[site]\n\
                   report \"summary\" total \"falls\" fall";
        let mut p = sum_process(EngineConfig::interpreter());
        let m = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).unwrap();
        {
            let mon = m.borrow();
            // Probes survive only at br_if sites, as operand observers.
            let (count, operand, generic) = mon.kind_counts();
            assert_eq!(count, 0);
            assert!(operand >= 1);
            assert_eq!(generic, 0);
            assert!(mon.dropped_sites() > 10, "non-br_if sites dropped at compile time");
            assert!(mon.lowering().iter().all(|l| l.residual.as_deref() == Some("(tos == 0)")));
        }
        p.invoke_export("sum", &[Value::I32(7)]).unwrap();
        // for_range's br_if exit check falls through once per iteration + 0 at exit.
        assert_eq!(m.borrow().counter("fall"), 7);
    }

    #[test]
    fn once_rules_self_remove() {
        let src = "match * once do inc hit[site]\n\
                   report \"summary\" percent \"overall %\" hit";
        let mut p = sum_process(EngineConfig::interpreter());
        let m = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).unwrap();
        let installed = p.probed_location_count();
        assert!(installed > 10);
        p.invoke_export("sum", &[Value::I32(3)]).unwrap();
        assert!(p.probed_location_count() < installed, "fired probes removed themselves");
        let r1 = m.borrow().counter("hit");
        p.invoke_export("sum", &[Value::I32(3)]).unwrap();
        assert_eq!(m.borrow().counter("hit"), r1, "removed probes observe nothing further");
        p.detach_monitor(m.handle()).unwrap();
        assert_eq!(p.probed_location_count(), 0);
    }

    #[test]
    fn bad_script_rejects_attach_with_diagnostic() {
        let mut p = sum_process(EngineConfig::interpreter());
        let m = ScriptMonitor::from_source("match f64.sqrt do inc a").unwrap();
        let err = p.attach_monitor(m).unwrap_err();
        match err {
            ProbeError::MonitorRejected(msg) => {
                assert!(msg.contains("matched no sites"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The failed attach left the process untouched.
        assert_eq!(p.probed_location_count(), 0);
        assert_eq!(p.monitor_count(), 0);
    }

    #[test]
    fn detach_restores_baseline_and_reattach_resets() {
        let src = "match * do inc exec[site]\nreport \"summary\" total \"execs\" exec";
        let mut p = sum_process(EngineConfig::interpreter());
        let m1 = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).unwrap();
        p.invoke_export("sum", &[Value::I32(5)]).unwrap();
        let first = m1.borrow().counter("exec");
        assert!(first > 0);
        p.detach_monitor(m1.handle()).unwrap();
        assert_eq!(p.probed_location_count(), 0);

        let m2 = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).unwrap();
        p.invoke_export("sum", &[Value::I32(5)]).unwrap();
        assert_eq!(m2.borrow().counter("exec"), first, "fresh attach, fresh counters");
    }

    #[test]
    fn counter_reads_see_later_rules_cells() {
        // A predicate reading a table counter that a *later* rule
        // increments must observe the live cell — rule order cannot
        // change semantics. `first` counts loop headers reached while
        // `seen[site]` is still zero, i.e. exactly once.
        let src = "match loop-header when $seen[site] == 0 do inc first\n\
                   match loop-header do inc seen[site]\n\
                   report \"summary\" total \"first\" first";
        let swapped = "match loop-header do inc seen[site]\n\
                       match loop-header when $seen[site] == 0 do inc first\n\
                       report \"summary\" total \"first\" first";
        let mut totals = Vec::new();
        for source in [src, swapped] {
            let mut p = sum_process(EngineConfig::interpreter());
            let m = p.attach_monitor(ScriptMonitor::from_source(source).unwrap()).unwrap();
            p.invoke_export("sum", &[Value::I32(10)]).unwrap();
            totals.push(m.borrow().counter("first"));
        }
        // Reader-first: fires before the bump each time the header
        // executes with seen==0 — exactly the first execution. Writer-
        // first: seen is already 1 when the reader fires, except the
        // very first execution where both fire in order bump-then-read.
        assert_eq!(totals[0], 1, "reader-before-writer sees live cells");
        assert_eq!(totals[1], 0, "writer-before-reader observes the bump");
    }

    #[test]
    fn facts_demote_generic_probes_with_row_identical_reports() {
        // `tos` over a non-operand-consuming site normally forces a
        // Generic probe; where the analysis proves the operand stack
        // empty, `tos` reads 0, the predicate folds, and the probe
        // demotes to a plain counter. The reported rows must not move.
        let src = "match local.get when tos == 0 do inc cold[site]\n\
                   report \"summary\" total \"cold\" cold";
        let run = |use_facts: bool| {
            let mut p = sum_process(EngineConfig::interpreter());
            let mut mon = ScriptMonitor::from_source(src).unwrap();
            if !use_facts {
                mon = mon.without_facts();
            }
            let m = p.attach_monitor(mon).unwrap();
            // The engine's installed shapes agree with the classification.
            for l in m.borrow().lowering() {
                let kinds = p.probe_kinds_at(l.loc.func, l.loc.pc);
                assert!(kinds.contains(&l.kind), "at {}: {kinds:?} vs {:?}", l.loc, l.kind);
            }
            p.invoke_export("sum", &[Value::I32(6)]).unwrap();
            let out = (m.borrow().kind_counts(), m.report());
            out
        };
        let ((count_on, _, generic_on), report_on) = run(true);
        let ((count_off, _, generic_off), report_off) = run(false);
        assert_eq!(count_off, 0, "without facts every tos predicate stays generic");
        assert!(generic_off > 0);
        assert!(count_on >= 1, "provably-empty-stack sites demote to Count");
        assert!(generic_on < generic_off);
        assert_eq!(report_on, report_off, "demotion must not change reported rows");
    }

    #[test]
    fn all_unreachable_rules_warn_and_install_nothing() {
        // The only i32.const sits after an unconditional branch; the
        // rule matches it, the analysis proves it dead, and attach
        // surfaces a diagnostic instead of silently counting nothing.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).br(0);
        f.i32_const(9).drop_();
        f.local_get(0);
        mb.add_func("id", f);
        let module = mb.build().unwrap();
        let src = "match i32.const do inc dead[site]\n\
                   report \"summary\" total \"dead\" dead";
        let mut p = Process::new(module, EngineConfig::interpreter(), &Linker::new()).unwrap();
        let m = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).unwrap();
        {
            let mon = m.borrow();
            assert_eq!(mon.lowering().len(), 0);
            assert_eq!(mon.dropped_sites(), 1);
            assert_eq!(mon.warnings().len(), 1);
            let w = &mon.warnings()[0];
            assert!(w.contains("match i32.const"), "{w}");
            assert!(w.contains("statically-unreachable"), "{w}");
        }
        assert_eq!(p.probed_location_count(), 0);
        p.invoke_export("id", &[Value::I32(3)]).unwrap();
        assert_eq!(m.borrow().counter("dead"), 0);
        // The materialized row still reports, at zero.
        let r = m.report();
        assert_eq!(r.get("summary").unwrap().count_of("dead"), Some(0));
    }

    #[test]
    fn tiers_agree_on_operand_scripts() {
        let src = "match branch when tos != 0 do inc taken[site]\n\
                   match branch when tos == 0 do inc fall[site]\n\
                   report \"profile\" ratio \"taken\" taken / fall\n\
                   report \"summary\" total \"branches\" taken + fall";
        let mut reports = Vec::new();
        for config in
            [EngineConfig::interpreter(), EngineConfig::jit(), EngineConfig::jit_no_intrinsics()]
        {
            let mut p = sum_process(config);
            let m = p.attach_monitor(ScriptMonitor::from_source(src).unwrap()).unwrap();
            p.invoke_export("sum", &[Value::I32(9)]).unwrap();
            reports.push(m.report());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        assert_eq!(reports[0].get("summary").unwrap().count_of("branches"), Some(10));
    }
}
