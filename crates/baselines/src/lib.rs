//! `wizard-baselines`: the comparison systems of the paper's evaluation,
//! rebuilt as faithful cost models over the same substrate (§5.6, §5.7,
//! §6.4). See DESIGN.md for the substitution table.

#![warn(missing_docs)]

pub mod dbi;
pub mod jvmti;
pub mod wasabi;
