//! `wizard-baselines`: the comparison systems of the paper's evaluation,
//! rebuilt as faithful cost models over the same substrate (§5.6, §5.7,
//! §6.4). See DESIGN.md for the substitution table.
//!
//! Each baseline takes an uninstrumented module and returns a ready-to-run
//! package: the instrumented module, a [`Linker`](wizard_engine::store::Linker)
//! providing its host hooks, and a shared analysis object to read results
//! from.
//!
//! # Example
//!
//! The Wasabi-style hotness baseline: a host ("JavaScript-boundary") call
//! before every instruction — the expensive end of the paper's Figure 6:
//!
//! ```
//! use wizard_baselines::wasabi;
//! use wizard_engine::{EngineConfig, Process, Value};
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! f.local_get(0).i32_const(1).i32_add();
//! mb.add_func("inc", f);
//! let module = mb.build()?;
//!
//! let run = wasabi::hotness(&module)?;
//! let mut p = Process::new(run.module.clone(), EngineConfig::interpreter(), &run.linker)?;
//! let r = p.invoke_export("inc", &[Value::I32(41)])?;
//! assert_eq!(r, vec![Value::I32(42)], "instrumentation must not change results");
//! assert!(run.analysis.events() > 0, "every instruction paid a host call");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod dbi;
pub mod jvmti;
pub mod wasabi;
