//! DynamoRIO-style dynamic binary instrumentation cost model (§5.7).
//!
//! DynamoRIO recompiles native code into a basic-block cache and inserts
//! *clean calls* at instrumentation points: each clean call spills and
//! restores the register file and EFLAGS around a call into analysis
//! code. The paper measures hotness at 3.9–192× and branch at 4.4–153×,
//! dominated by exactly those spills.
//!
//! We model the clean call explicitly: the injected hook saves a 16-slot
//! virtual register file plus a flags word, performs the analysis action
//! (a counter bump in a tuple-keyed map), and restores. The
//! "uninstrumented native" baseline is the same program on the engine's
//! compiled tier without hooks.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use wizard_engine::store::Linker;
use wizard_rewriter::inject_host_call;
use wizard_wasm::module::Module;
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::ValidateError;

/// The DBI tool state.
#[derive(Debug, Default)]
pub struct DbiTool {
    /// The simulated machine context (register file + flags), spilled and
    /// restored around every clean call.
    machine_ctx: RefCell<[u64; 17]>,
    spill_area: RefCell<[u64; 17]>,
    counters: RefCell<HashMap<(i32, i32), u64>>,
    clean_calls: Cell<u64>,
}

impl DbiTool {
    /// Number of clean calls executed.
    pub fn clean_calls(&self) -> u64 {
        self.clean_calls.get()
    }

    /// Sum of all counters.
    pub fn total(&self) -> u64 {
        self.counters.borrow().values().sum()
    }
}

/// A DBI-instrumented program plus its tool state.
pub struct DbiRun {
    /// The instrumented module.
    pub module: Module,
    /// Shared tool state.
    pub tool: Rc<DbiTool>,
    /// Linker providing the clean-call target.
    pub linker: Linker,
}

fn make_run(module: &Module, branch: bool) -> Result<DbiRun, ValidateError> {
    let select: fn(&wizard_wasm::instr::Instr) -> bool =
        if branch { |i| matches!(i.op, op::IF | op::BR_IF | op::BR_TABLE) } else { |_| true };
    let (instrumented, _) = inject_host_call(module, "clean_call", select, branch)?;
    let tool = Rc::new(DbiTool::default());
    let t = Rc::clone(&tool);
    let mut linker = Linker::new();
    linker.func("hook", "clean_call", move |_ctx, args| {
        t.clean_calls.set(t.clean_calls.get() + 1);
        // Spill the machine context (registers + flags)...
        {
            let ctx = t.machine_ctx.borrow();
            let mut spill = t.spill_area.borrow_mut();
            spill.copy_from_slice(&*ctx);
        }
        // ...run the analysis payload...
        {
            let f = args[0].as_i32().unwrap_or(0);
            let pc = args[1].as_i32().unwrap_or(0);
            let mut map = t.counters.borrow_mut();
            *map.entry((f, pc)).or_insert(0) += 1;
        }
        // ...and restore it (the EFLAGS word gets "recomputed").
        {
            let spill = t.spill_area.borrow();
            let mut ctx = t.machine_ctx.borrow_mut();
            ctx.copy_from_slice(&*spill);
            ctx[16] = ctx[16].wrapping_add(1); // flags write-back
        }
        Ok(vec![])
    });
    Ok(DbiRun { module: instrumented, tool, linker })
}

/// Hotness via DBI clean calls at every instruction.
///
/// # Errors
///
/// Propagates validation failure of the rewritten module.
pub fn hotness(module: &Module) -> Result<DbiRun, ValidateError> {
    make_run(module, false)
}

/// Branch profiling via DBI clean calls at conditional branches.
///
/// # Errors
///
/// Propagates validation failure of the rewritten module.
pub fn branch(module: &Module) -> Result<DbiRun, ValidateError> {
    make_run(module, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn clean_calls_fire_and_preserve_results() {
        let mut mb = ModuleBuilder::new();
        mb.memory(1);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("run", f);
        let m = mb.build().unwrap();
        let run = hotness(&m).unwrap();
        let mut p = Process::new(run.module, EngineConfig::jit(), &run.linker).unwrap();
        let r = p.invoke_export("run", &[Value::I32(10)]).unwrap();
        assert_eq!(r, vec![Value::I32(45)]);
        assert!(run.tool.clean_calls() > 50);
        assert_eq!(run.tool.total(), run.tool.clean_calls());
    }
}
