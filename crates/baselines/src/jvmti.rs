//! JVMTI-style `MethodEntry` event interception (paper §6.4 and the
//! appendix's Richards experiment).
//!
//! JVMTI agents receive a callback for *every* method entry; the JVM must
//! materialize an event, transition into the agent, and the agent
//! typically resolves the method through JNI-style lookups. That costs
//! the paper 50–100× on the indirect-call-heavy Richards benchmark,
//! versus 2.5–3× for Wizard's engine-level Calls monitor.
//!
//! The simulation attaches a *generic* probe at the entry of every
//! function which allocates a boxed event, resolves the method name
//! through a string-keyed map (the JNI analog), and dispatches through a
//! `dyn` handler — the JVMTI cost shape on top of our engine.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use wizard_engine::{ClosureProbe, ProbeError, Process};

/// A materialized MethodEntry event (boxed per occurrence, like a JVMTI
/// event record crossing into the agent).
#[derive(Debug, Clone)]
pub struct MethodEntryEvent {
    /// Method identifier.
    pub method_id: u32,
    /// Resolved method name (JNI-style lookup result).
    pub name: String,
    /// Call depth at entry.
    pub depth: u32,
}

/// The agent's accumulated statistics.
#[derive(Debug, Default)]
pub struct AgentState {
    entries: HashMap<String, u64>,
    events: u64,
}

impl AgentState {
    /// Total MethodEntry events handled.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Entry count per method name.
    pub fn per_method(&self) -> &HashMap<String, u64> {
        &self.entries
    }
}

/// A JVMTI-style agent attached to a process.
pub struct Agent {
    state: Rc<RefCell<AgentState>>,
}

impl Agent {
    /// Attaches MethodEntry interception to every locally-defined function.
    ///
    /// # Errors
    ///
    /// Propagates [`ProbeError`]s from probe insertion.
    pub fn attach(process: &mut Process) -> Result<Agent, ProbeError> {
        let state = Rc::new(RefCell::new(AgentState::default()));
        // The "method table" the agent resolves ids through.
        let mut method_table: HashMap<u32, String> = HashMap::new();
        let module = process.module();
        let n_imp = module.num_imported_funcs();
        for i in 0..module.funcs.len() {
            let func = n_imp + i as u32;
            let name = module
                .func_name(func)
                .map_or_else(|| format!("method_{func}"), ToString::to_string);
            method_table.insert(func, name);
        }
        let table = Rc::new(method_table);
        // The event handler, dispatched dynamically like an agent callback.
        let st = Rc::clone(&state);
        let handler: Rc<dyn Fn(Box<MethodEntryEvent>)> = Rc::new(move |ev| {
            let mut s = st.borrow_mut();
            s.events += 1;
            *s.entries.entry(ev.name.clone()).or_insert(0) += 1;
        });
        let funcs: Vec<u32> = (n_imp..process.module().num_funcs()).collect();
        for func in funcs {
            let table = Rc::clone(&table);
            let handler = Rc::clone(&handler);
            process.add_local_probe(
                func,
                0,
                ClosureProbe::shared(move |ctx| {
                    // Materialize the event record (allocation per event),
                    // resolve the method name (JNI-style lookup + clone),
                    // and dispatch through the dynamic callback.
                    let name =
                        table.get(&func).cloned().unwrap_or_else(|| format!("method_{func}"));
                    let ev =
                        Box::new(MethodEntryEvent { method_id: func, name, depth: ctx.depth() });
                    handler(ev);
                }),
            )?;
        }
        Ok(Agent { state })
    }

    /// The agent's statistics.
    pub fn events(&self) -> u64 {
        self.state.borrow().events()
    }

    /// Entry counts per method.
    pub fn per_method(&self) -> HashMap<String, u64> {
        self.state.borrow().entries.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Value};

    #[test]
    fn agent_counts_method_entries_on_richards() {
        let m = wizard_suites::richards::module();
        let mut p = Process::new(m, EngineConfig::interpreter(), &Linker::new()).unwrap();
        let agent = Agent::attach(&mut p).unwrap();
        p.invoke_export("run", &[Value::I32(1000)]).unwrap();
        // run + 1000 indirect task dispatches + queue helper calls.
        assert!(agent.events() > 1500, "events: {}", agent.events());
        let per = agent.per_method();
        assert!(per.contains_key("run"));
        assert!(per.keys().any(|k| k.starts_with("task_")));
    }
}
