//! Wasabi-style instrumentation (Lehmann & Pradel, ASPLOS'19): static
//! injection of trampolines that call analysis code written in JavaScript
//! and run by the host engine (§5.6).
//!
//! We reproduce the *cost class* of that boundary: every event crosses
//! from Wasm into a host callback whose analysis state lives in a
//! dynamic-language-style environment — values boxed, state keyed by
//! freshly-built strings in a hash map, counters held as `f64` (JavaScript
//! numbers). This is what makes Wasabi 30–6000× slower than engine-level
//! probes in the paper, and the same shape emerges here.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use wizard_engine::store::Linker;
use wizard_rewriter::inject_host_call;
use wizard_wasm::module::Module;
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::ValidateError;

/// The "JavaScript" analysis state: string-keyed f64 counters.
#[derive(Debug, Default)]
pub struct JsAnalysis {
    counters: RefCell<HashMap<String, f64>>,
    events: std::cell::Cell<u64>,
}

/// A Wasabi-style instrumented program plus its host analysis.
pub struct WasabiRun {
    /// The trampoline-injected module.
    pub module: Module,
    /// Shared analysis state (inspect after the run).
    pub analysis: Rc<JsAnalysis>,
    /// The linker providing the hook import.
    pub linker: Linker,
}

impl JsAnalysis {
    /// Total events received.
    pub fn events(&self) -> u64 {
        self.events.get()
    }

    /// Sum of all counters.
    pub fn total(&self) -> f64 {
        self.counters.borrow().values().sum()
    }

    /// Number of distinct keys.
    pub fn distinct_sites(&self) -> usize {
        self.counters.borrow().len()
    }
}

fn make_run(module: &Module, hook: &str, branch: bool) -> Result<WasabiRun, ValidateError> {
    let select: fn(&wizard_wasm::instr::Instr) -> bool =
        if branch { |i| matches!(i.op, op::IF | op::BR_IF | op::BR_TABLE) } else { |_| true };
    let (instrumented, _sites) = inject_host_call(module, hook, select, branch)?;
    let analysis = Rc::new(JsAnalysis::default());
    let a = Rc::clone(&analysis);
    let mut linker = Linker::new();
    let hook_owned = hook.to_string();
    linker.func("hook", hook, move |_ctx, args| {
        // The "JavaScript" callback: box-and-stringify per event.
        a.events.set(a.events.get() + 1);
        let f = args[0].as_i32().unwrap_or(0);
        let pc = args[1].as_i32().unwrap_or(0);
        let cond = args[2].as_i32().unwrap_or(0);
        let key = if hook_owned.as_str() == "branch" {
            format!("{hook_owned}@{f}:{pc}/{}", if cond != 0 { "taken" } else { "fall" })
        } else {
            format!("{hook_owned}@{f}:{pc}")
        };
        let mut map = a.counters.borrow_mut();
        *map.entry(key).or_insert(0.0) += 1.0;
        Ok(vec![])
    });
    Ok(WasabiRun { module: instrumented, analysis, linker })
}

/// The hotness monitor, Wasabi-style: a JS-boundary call before every
/// instruction.
///
/// # Errors
///
/// Propagates validation failure of the rewritten module.
pub fn hotness(module: &Module) -> Result<WasabiRun, ValidateError> {
    make_run(module, "hotness", false)
}

/// The branch monitor, Wasabi-style: a JS-boundary call before every
/// conditional branch, receiving the condition operand.
///
/// # Errors
///
/// Propagates validation failure of the rewritten module.
pub fn branch(module: &Module) -> Result<WasabiRun, ValidateError> {
    make_run(module, "branch", true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new();
        mb.memory(1);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        f.local_get(0);
        mb.add_func("run", f);
        mb.build().unwrap()
    }

    #[test]
    fn hotness_counts_every_instruction() {
        let m = loop_module();
        let run = hotness(&m).unwrap();
        let mut p = Process::new(run.module, EngineConfig::jit(), &run.linker).unwrap();
        let r = p.invoke_export("run", &[Value::I32(10)]).unwrap();
        assert_eq!(r, vec![Value::I32(10)]);
        assert!(run.analysis.events() > 50);
        assert_eq!(run.analysis.total(), run.analysis.events() as f64);
    }

    #[test]
    fn branch_distinguishes_directions() {
        let m = loop_module();
        let run = branch(&m).unwrap();
        let mut p = Process::new(run.module, EngineConfig::jit(), &run.linker).unwrap();
        p.invoke_export("run", &[Value::I32(10)]).unwrap();
        assert_eq!(run.analysis.events(), 11);
        assert_eq!(run.analysis.distinct_sites(), 2, "taken and fall-through keys");
    }
}
