//! Criterion benchmarks of instrumented execution across tiers — the
//! per-mechanism view behind Figures 3 and 4: local vs global probes in
//! the interpreter, and generic vs intrinsified probes in the JIT.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use wizard_bench::{measure, Analysis, System};
use wizard_suites::{polybench_suite, Scale};

fn tiers_and_mechanisms(c: &mut Criterion) {
    std::env::set_var("WIZARD_RUNS", "1");
    let bench = polybench_suite(Scale::Test)
        .into_iter()
        .find(|b| b.name == "gemm")
        .expect("gemm exists");
    let mut g = c.benchmark_group("gemm-instrumented");
    g.measurement_time(Duration::from_secs(3)).sample_size(10);
    for (label, system, analysis) in [
        ("interp-uninstr", System::Interp, Analysis::None),
        ("interp-hotness-local", System::Interp, Analysis::Hotness),
        ("interp-hotness-global", System::InterpGlobal, Analysis::Hotness),
        ("jit-uninstr", System::JitIntrinsified, Analysis::None),
        ("jit-hotness-generic", System::Jit, Analysis::Hotness),
        ("jit-hotness-intrinsified", System::JitIntrinsified, Analysis::Hotness),
        ("jit-branch-generic", System::Jit, Analysis::Branch),
        ("jit-branch-intrinsified", System::JitIntrinsified, Analysis::Branch),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let m = match analysis {
                    Analysis::None => wizard_bench::baseline(&bench, system),
                    a => measure(&bench, system, a),
                };
                m.checksum
            });
        });
    }
    g.finish();
}

criterion_group!(probes, tiers_and_mechanisms);
criterion_main!(probes);
