//! Criterion micro-benchmarks of the engine mechanisms the paper's design
//! leans on: dispatch-table switching, bytecode overwriting, probe
//! insertion/removal, and FrameAccessor materialization.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use wizard_engine::store::Linker;
use wizard_engine::{ClosureProbe, CountProbe, EngineConfig, Process, Value};
use wizard_suites::{polybench_suite, Scale};

fn bench_process() -> (Process, u32) {
    let bench = &polybench_suite(Scale::Test)[2]; // gesummv: loop-dense
    let p = Process::new(bench.module.clone(), EngineConfig::interpreter(), &Linker::new())
        .expect("instantiates");
    (p, bench.n as u32)
}

/// Zero-overhead-when-off: uninstrumented interpreter run vs a run after a
/// global probe was inserted and removed again (the dispatch table must be
/// switched back, costing nothing).
fn dispatch_table_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch-table");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    let (mut p, n) = bench_process();
    g.bench_function("uninstrumented", |b| {
        b.iter(|| p.invoke_export("run", &[Value::I32(n as i32)]).unwrap());
    });
    let id = p.add_global_probe(ClosureProbe::shared(|_| {})).unwrap();
    p.remove_probe(id).unwrap();
    g.bench_function("after-global-probe-removed", |b| {
        b.iter(|| p.invoke_export("run", &[Value::I32(n as i32)]).unwrap());
    });
    g.finish();
}

/// Bytecode overwriting: probe insertion and removal are O(1).
fn probe_insert_remove(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe-churn");
    g.measurement_time(Duration::from_secs(3)).sample_size(30);
    let (mut p, _) = bench_process();
    let func = p.module().export_func("run").unwrap();
    g.bench_function("insert+remove local probe", |b| {
        b.iter(|| {
            let id = p.add_local_probe_val(func, 0, CountProbe::new()).unwrap();
            p.remove_probe(id).unwrap();
        });
    });
    g.finish();
}

/// Probe fire paths: empty generic probe vs counter probe in the
/// interpreter (per-fire cost).
fn probe_fire_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("probe-fire");
    g.measurement_time(Duration::from_secs(3)).sample_size(20);
    let cases: [(&str, fn(&mut Process, u32)); 3] = [
        ("generic-empty", |p: &mut Process, f: u32| {
            p.add_local_probe_val(f, 0, wizard_engine::EmptyProbe).unwrap();
        }),
        ("count", |p: &mut Process, f: u32| {
            p.add_local_probe_val(f, 0, CountProbe::new()).unwrap();
        }),
        ("accessor-touching", |p: &mut Process, f: u32| {
            p.add_local_probe(
                f,
                0,
                ClosureProbe::shared(|ctx| {
                    let _ = ctx.accessor();
                }),
            )
            .unwrap();
        }),
    ];
    for (label, attach) in cases {
        let (mut p, n) = bench_process();
        let func = p.module().export_func("run").unwrap();
        attach(&mut p, func);
        g.bench_function(label, |b| {
            b.iter(|| p.invoke_export("run", &[Value::I32(n as i32)]).unwrap());
        });
    }
    g.finish();
}

criterion_group!(micro, dispatch_table_switch, probe_insert_remove, probe_fire_paths);
criterion_main!(micro);
