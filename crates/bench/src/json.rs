//! A minimal JSON writer for the `BENCH_*.json` artifacts.
//!
//! The workspace is dependency-free (no serde), and the bench output
//! schema is small and flat, so a hand-rolled builder suffices. The schema
//! itself is documented in `EXPERIMENTS.md` ("The `BENCH_*.json` schema").
//!
//! ```
//! use wizard_bench::json::Json;
//!
//! let j = Json::object([
//!     ("bench", Json::str("pool_throughput")),
//!     ("shards", Json::num(4.0)),
//!     ("names", Json::array(vec![Json::str("richards")])),
//! ]);
//! assert_eq!(
//!     j.to_string(),
//!     r#"{"bench":"pool_throughput","shards":4,"names":["richards"]}"#
//! );
//! ```

/// A JSON value: enough of the data model for flat benchmark reports.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integral values print without a decimal point).
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// An array value.
    pub fn array(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// An object from `(key, value)` pairs (insertion order preserved).
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl core::fmt::Display for Json {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                let mut out = String::new();
                escape(s, &mut out);
                f.write_str(&out)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    escape(k, &mut key);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_numbers() {
        let j = Json::object([
            ("s", Json::str("a\"b\\c\nd")),
            ("i", Json::num(3.0)),
            ("f", Json::num(2.5)),
            ("b", Json::Bool(true)),
            ("z", Json::Null),
        ]);
        assert_eq!(j.to_string(), r#"{"s":"a\"b\\c\nd","i":3,"f":2.5,"b":true,"z":null}"#);
    }
}
