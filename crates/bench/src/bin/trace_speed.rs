//! Streaming-trace capture speed: what `wizard-trace`'s branch tracer
//! costs at runtime and how compact the stream is. Runs Richards +
//! PolyBench on the JIT tier (operand probes intrinsified) twice —
//! untraced baseline vs `StreamingTraceMonitor` capturing every branch
//! outcome to an in-memory sink — and reports:
//!
//! * **overhead** — traced / baseline execution time;
//! * **events/sec** — branch events captured per second of traced run;
//! * **bytes/branch** and **bits/branch** — stream size over branch
//!   count, *including* the stream header, site dictionary, and block
//!   framing (the whole cost of the artifact on disk).
//!
//! The compact format spends one byte per small-delta branch (taken bit
//! folded into the tag), so on branchy code the amortized cost should
//! sit well under two bytes per branch: outside smoke mode the bench
//! asserts `bytes/branch <= 2.0` on Richards.
//!
//! Emits `BENCH_trace.json` (schema in `EXPERIMENTS.md`).
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS`, `WIZARD_SMOKE`.

use std::time::{Duration, Instant};

use wizard_bench::json::Json;
use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, Process, Value};
use wizard_suites::Benchmark;
use wizard_trace::{decode_trace, StreamingTraceMonitor, TraceCounters};

/// One traced or untraced execution; instantiation and attach/detach
/// stay outside the timed region, so the overhead ratio isolates what
/// the probes cost while the program runs.
fn run_once(b: &Benchmark, traced: bool) -> (Duration, TraceCounters, Vec<u8>) {
    let mut p =
        Process::new(b.module.clone(), EngineConfig::jit(), &Linker::new()).expect("instantiates");
    if traced {
        let m = p.attach_monitor(StreamingTraceMonitor::in_memory()).expect("attach");
        let start = Instant::now();
        p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
        let t = start.elapsed();
        p.detach_monitor(m.handle()).expect("detach");
        let mon = m.borrow();
        assert!(mon.sink_error().is_none(), "{}: sink failed mid-stream", b.name);
        let data = mon.trace_data().expect("in-memory tracer");
        (t, mon.counters(), data)
    } else {
        let start = Instant::now();
        p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
        (start.elapsed(), TraceCounters::default(), Vec::new())
    }
}

/// Best-of-N runs (same discipline as the other figure emitters); the
/// captured stream is deterministic across runs, so the last one is
/// kept (and cross-checked against its predecessor).
fn measure(b: &Benchmark, traced: bool) -> (Duration, TraceCounters, Vec<u8>) {
    let mut best = Duration::MAX;
    let mut out: Option<(TraceCounters, Vec<u8>)> = None;
    for _ in 0..wizard_bench::runs().max(3) {
        let (t, c, data) = run_once(b, traced);
        best = best.min(t);
        if let Some((prev_c, prev_data)) = &out {
            assert_eq!((prev_c, prev_data), (&c, &data), "{}: capture not deterministic", b.name);
        }
        out = Some((c, data));
    }
    let (c, data) = out.expect("at least one run");
    (best, c, data)
}

fn main() {
    let scale = wizard_bench::scale();
    let mut suite = vec![wizard_suites::richards_benchmark(match scale {
        wizard_suites::Scale::Test => 50,
        wizard_suites::Scale::Small => 300,
        wizard_suites::Scale::Medium => 1000,
    })];
    suite.extend(wizard_suites::polybench_suite(scale));

    println!("=== streaming trace capture: overhead and stream density (JIT) ===");
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "benchmark", "branches", "bytes", "B/branch", "events/sec", "overhead", "baseline"
    );

    let mut series = Vec::new();
    let mut richards_bpb = None;
    let mut total_events = 0u64;
    let mut total_bytes = 0u64;
    for b in &suite {
        let (base, _, _) = measure(b, false);
        let (traced, c, data) = measure(b, true);
        assert_eq!(c.bytes, data.len() as u64, "{}: counters disagree with the sink", b.name);
        // The stream must remain well-formed at bench scale, not just in
        // unit tests: decode the full capture once per benchmark.
        let (_, events) = decode_trace(&data)
            .unwrap_or_else(|e| panic!("{}: captured stream does not decode: {e}", b.name));
        assert_eq!(events.len() as u64, c.events, "{}: decoded event count drifts", b.name);

        let overhead = traced.as_secs_f64() / base.as_secs_f64().max(1e-12);
        let bpb = c.bytes as f64 / c.branches.max(1) as f64;
        let eps = c.events as f64 / traced.as_secs_f64().max(1e-12);
        if b.name == "richards" {
            richards_bpb = Some(bpb);
        }
        total_events += c.events;
        total_bytes += c.bytes;
        println!(
            "{:<16} {:>10} {:>12} {:>10.3} {:>11.2}M {:>11.2}x {:>9.1}us",
            b.name,
            c.branches,
            c.bytes,
            bpb,
            eps / 1e6,
            overhead,
            base.as_secs_f64() * 1e6
        );
        series.push(Json::object([
            ("benchmark", Json::str(b.name)),
            ("branches", Json::num(c.branches as f64)),
            ("events", Json::num(c.events as f64)),
            ("stream_bytes", Json::num(c.bytes as f64)),
            ("bytes_per_branch", Json::num(bpb)),
            ("bits_per_branch", Json::num(bpb * 8.0)),
            ("events_per_sec", Json::num(eps)),
            ("baseline_us", Json::num(base.as_secs_f64() * 1e6)),
            ("traced_us", Json::num(traced.as_secs_f64() * 1e6)),
            ("overhead", Json::num(overhead)),
        ]));
    }

    let richards_bpb = richards_bpb.expect("suite includes richards");
    println!(
        "\nrichards: {richards_bpb:.3} bytes/branch ({:.2} bits/branch); \
         suite total {total_events} events, {total_bytes} bytes",
        richards_bpb * 8.0
    );
    if wizard_bench::smoke() {
        println!("(smoke mode: skipping the <=2.0 bytes/branch assertion)");
    } else {
        assert!(
            richards_bpb <= 2.0,
            "richards stream density regressed: {richards_bpb:.3} bytes/branch \
             (bound: 2.0) — the delta encoder is no longer packing branches"
        );
    }

    let mut fields =
        wizard_bench::metadata("trace_speed", &["richards", "polybench"], &EngineConfig::jit());
    fields.push(("tier".to_string(), Json::str("jit-intrinsified")));
    fields.push(("sink".to_string(), Json::str("memory")));
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "summary".to_string(),
        Json::object([
            ("benchmarks", Json::num(suite.len() as f64)),
            ("total_events", Json::num(total_events as f64)),
            ("total_bytes", Json::num(total_bytes as f64)),
            ("richards_bytes_per_branch", Json::num(richards_bpb)),
            ("richards_bits_per_branch", Json::num(richards_bpb * 8.0)),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_trace.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_trace.json");
    println!("wrote {path}");
}
