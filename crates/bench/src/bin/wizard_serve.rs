//! `wizard_serve`: a long-running multi-tenant instrumentation server on
//! top of `wizard-pool`'s work-stealing [`ServeEngine`].
//!
//! Every submitted job runs under a hotness monitor; reports merge
//! fleet-wide and scheduler counters (steals, queue depth, throttles)
//! are queryable while the server runs.
//!
//! ```sh
//! cargo run --release --bin wizard_serve -- --demo 12   # demo fleet, exit
//! cargo run --release --bin wizard_serve                # line protocol
//! ```
//!
//! The line protocol (stdin → stdout, one command per line):
//!
//! * `SUBMIT <tenant> <priority> <kernel> <n>` — admit a job; `priority`
//!   is `high` / `normal` / `low`, `kernel` is any suite kernel name
//!   (`gemm`, `richards`, `crc32`, ...; see `LIST`). Prints
//!   `ok <job>` / `rejected` / `err <why>`.
//! * `LIST` — the kernel registry.
//! * `STATS` — fleet-wide engine + scheduler counters so far.
//! * `TENANTS` — per-tenant fuel/throttle/job accounting.
//! * `DRAIN` (or EOF) — close admission, wait for every job, print each
//!   outcome and the merged summary, exit.
//!
//! With `--demo N` (or under `WIZARD_SMOKE=1`, so CI's bench smoke loop
//! exercises the binary without a driver) the server submits an
//! `N`-job `wizard_suites::tenant_fleet` to itself and drains.
//!
//! Environment: `WIZARD_SCALE` (kernel problem sizes),
//! `WIZARD_SERVE_WORKERS` (0 = auto), `WIZARD_SERVE_SLICE` (fuel slice,
//! default 10000).

use std::collections::HashMap;
use std::io::BufRead;
use std::time::Instant;

use wizard_engine::{EngineConfig, Shims, Value};
use wizard_monitors::HotnessMonitor;
use wizard_pool::{Job, JobHandle, Priority, ServeConfig, ServeEngine, Submit};
use wizard_suites::{corpus, Scale};
use wizard_wasm::module::Module;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Kernel registry: every suite kernel by name, plus whether it needs a
/// shim linker (ingestion-corpus modules importing host functions).
struct Registry {
    kernels: HashMap<&'static str, (Module, i32, bool)>,
    names: Vec<&'static str>,
}

impl Registry {
    fn new(scale: Scale) -> Registry {
        let mut kernels = HashMap::new();
        for b in wizard_suites::all_suites(scale) {
            kernels.insert(b.name, (b.module, b.n, false));
        }
        let r = wizard_suites::richards_benchmark(match scale {
            Scale::Test => 20,
            Scale::Small => 100,
            Scale::Medium => 300,
        });
        kernels.insert(r.name, (r.module, r.n, false));
        for e in corpus::corpus(scale) {
            kernels.entry(e.name).or_insert((e.module, e.n, e.uses_imports));
        }
        let mut names: Vec<&'static str> = kernels.keys().copied().collect();
        names.sort_unstable();
        Registry { kernels, names }
    }

    /// Builds a monitored job; `n` overrides the scale default if `Some`.
    fn job(&self, name: &str, tenant: &str, priority: Priority, n: Option<i32>) -> Option<Job> {
        let (module, default_n, uses_imports) = self.kernels.get(name)?;
        let mut job = Job::new(
            format!("{name}@{tenant}"),
            module.clone(),
            "run",
            vec![Value::I32(n.unwrap_or(*default_n))],
        )
        .for_tenant(tenant)
        .at_priority(priority)
        .with_monitor(HotnessMonitor::new);
        if *uses_imports {
            let module = module.clone();
            job = job.with_linker(move || {
                Shims::standard().linker_for(&module).expect("registry module links against shims")
            });
        }
        Some(job)
    }
}

fn parse_priority(s: &str) -> Option<Priority> {
    match s.to_ascii_lowercase().as_str() {
        "high" | "0" => Some(Priority::High),
        "normal" | "1" => Some(Priority::Normal),
        "low" | "2" => Some(Priority::Low),
        _ => None,
    }
}

fn print_stats(engine: &ServeEngine) {
    let s = engine.stats();
    println!(
        "stats in_flight={} completed={} queue_depth={} slices={} steals={} \
         queue_depth_max={} throttles={} fuel={} probe_fires={}",
        engine.in_flight(),
        engine.completed(),
        engine.queue_depth(),
        s.slices_executed,
        s.steals,
        s.queue_depth_max,
        s.budget_throttles,
        s.fuel_consumed,
        s.probe_fires,
    );
}

fn print_tenants(engine: &ServeEngine) {
    for t in engine.tenant_stats() {
        println!(
            "tenant {} fuel={} throttles={} jobs={}",
            t.tenant, t.fuel_spent, t.throttles, t.jobs
        );
    }
}

fn drain_and_report(engine: ServeEngine, handles: Vec<JobHandle>, started: Instant) {
    engine.drain();
    println!(
        "{:<24} {:<12} {:<7} {:>7} {:>7} {:>7} {:>10}  status",
        "job", "tenant", "prio", "worker", "slices", "moves", "lat ms"
    );
    for h in &handles {
        let o = h.wait();
        println!(
            "{:<24} {:<12} {:<7} {:>7} {:>7} {:>7} {:>10.3}  {:?}",
            o.name,
            o.tenant,
            o.priority.name(),
            o.worker,
            o.slices,
            o.migrations,
            o.latency.as_secs_f64() * 1e3,
            o.status,
        );
    }
    let summary = engine.shutdown();
    println!(
        "\nserved {} job(s) in {:.1} ms — slices={} steals={} queue_depth_max={} throttles={}",
        summary.completed,
        started.elapsed().as_secs_f64() * 1e3,
        summary.stats.slices_executed,
        summary.stats.steals,
        summary.stats.queue_depth_max,
        summary.stats.budget_throttles,
    );
    for t in &summary.tenants {
        println!(
            "tenant {:<12} fuel={:<12} throttles={:<4} jobs={}",
            t.tenant, t.fuel_spent, t.throttles, t.jobs
        );
    }
    if let Some(r) = summary.merged_report("hotness") {
        println!("\nmerged across all tenants:\n{r}");
    }
}

fn demo(registry: &Registry, engine: ServeEngine, scale: Scale, jobs: usize) {
    println!("demo: serving a {jobs}-job tenant fleet on {} worker(s)", engine.workers());
    let started = Instant::now();
    let mut handles = Vec::new();
    for (k, spec) in wizard_suites::tenant_fleet(scale, jobs).iter().enumerate() {
        let priority = match spec.class {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        let mut job = registry
            .job(spec.name, spec.tenant, priority, Some(spec.n))
            .expect("fleet kernels are registered");
        job.name = format!("{}-{k}@{}", spec.name, spec.tenant);
        match engine.submit_blocking(job) {
            Submit::Accepted(h) => handles.push(h),
            other => panic!("demo submission failed: {other:?}"),
        }
    }
    drain_and_report(engine, handles, started);
}

fn main() {
    let scale = wizard_bench::scale();
    let workers = env_u64("WIZARD_SERVE_WORKERS", 0) as usize;
    let slice = env_u64("WIZARD_SERVE_SLICE", 10_000);
    let registry = Registry::new(scale);
    let engine = ServeEngine::new(ServeConfig {
        workers,
        engine: EngineConfig::builder().fuel_slice(slice).build(),
        ..ServeConfig::default()
    });

    let args: Vec<String> = std::env::args().skip(1).collect();
    let demo_n = match args.first().map(String::as_str) {
        Some("--demo") => Some(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12)),
        // CI's bench smoke loop runs every binary with no stdin driver.
        None if wizard_bench::smoke() => Some(12),
        None => None,
        Some(other) => {
            eprintln!("unknown argument {other:?} (expected --demo [N])");
            std::process::exit(2);
        }
    };
    if let Some(n) = demo_n {
        demo(&registry, engine, scale, n);
        return;
    }

    println!(
        "wizard-serve: {} worker(s), fuel slice {slice}, {} kernel(s); \
         SUBMIT <tenant> <priority> <kernel> [n] | LIST | STATS | TENANTS | DRAIN",
        engine.workers(),
        registry.names.len(),
    );
    let started = Instant::now();
    let mut handles = Vec::new();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("read stdin");
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => {}
            ["SUBMIT" | "submit", tenant, priority, kernel, rest @ ..] => {
                let Some(priority) = parse_priority(priority) else {
                    println!("err bad priority {priority:?} (high/normal/low)");
                    continue;
                };
                let n = rest.first().and_then(|s| s.parse().ok());
                match registry.job(kernel, tenant, priority, n) {
                    None => println!("err unknown kernel {kernel:?} (try LIST)"),
                    Some(job) => match engine.try_submit(job) {
                        Submit::Accepted(h) => {
                            println!("ok {}", h.name());
                            handles.push(h);
                        }
                        Submit::Rejected(_) => println!("rejected (queue full)"),
                        Submit::Invalid { error, .. } => println!("err invalid module: {error}"),
                        Submit::Closed(_) => println!("err admission closed"),
                    },
                }
            }
            ["LIST" | "list"] => println!("kernels: {}", registry.names.join(" ")),
            ["STATS" | "stats"] => print_stats(&engine),
            ["TENANTS" | "tenants"] => print_tenants(&engine),
            ["DRAIN" | "drain" | "EXIT" | "exit" | "QUIT" | "quit"] => break,
            other => println!("err unknown command {other:?}"),
        }
    }
    drain_and_report(engine, handles, started);
}
