//! Figure 5: decomposition of instrumented JIT execution time into program
//! time (T_JIT), probe-dispatch overhead (T_PD, measured with empty
//! probes), and M-code time (T_M), with and without intrinsification —
//! the paper's empty-probe methodology (§5.3).

use wizard_bench::{baseline, measure, Analysis, System};
use wizard_suites::polybench_suite;

fn main() {
    let suite = polybench_suite(wizard_bench::scale());
    for (analysis, empty, label) in [
        (Analysis::Hotness, Analysis::HotnessEmpty, "hotness"),
        (Analysis::Branch, Analysis::BranchEmpty, "branch"),
    ] {
        println!("=== Figure 5 ({label}): % of runtime in program / probe dispatch / M-code ===");
        println!(
            "{:<16} {:>28} {:>28}",
            "benchmark", "JIT (prog/PD/M %)", "JIT intrins (prog/PD/M %)"
        );
        for b in &suite {
            let base = baseline(b, System::JitIntrinsified).time.as_secs_f64();
            let mut cols = Vec::new();
            for system in [System::Jit, System::JitIntrinsified] {
                let t_pd = measure(b, system, empty).time.as_secs_f64();
                let t_all = measure(b, system, analysis).time.as_secs_f64();
                let prog = base.min(t_all);
                let pd = (t_pd - base).max(0.0).min(t_all - prog);
                let m = (t_all - prog - pd).max(0.0);
                let total = t_all.max(1e-9);
                cols.push(format!(
                    "{:>7.1}/{:>5.1}/{:>5.1}",
                    100.0 * prog / total,
                    100.0 * pd / total,
                    100.0 * m / total
                ));
            }
            println!("{:<16} {:>28} {:>28}", b.name, cols[0], cols[1]);
        }
        println!();
    }
    println!("(cross-hatched region of the paper = the JIT column minus the intrins column)");
}
