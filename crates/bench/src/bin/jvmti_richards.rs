//! §6.4 / Appendix A.8: the JVMTI comparison. A JVMTI-style MethodEntry
//! agent vs Wizard's Calls monitor on the Richards benchmark, at
//! increasing loop counts, using the appendix's base-time-subtracted
//! relative execution time:
//! `(T_i - T_bi) / (T_u - T_bu)` where the `b` runs use 0 loops.

use std::time::{Duration, Instant};

use wizard_baselines::jvmti::Agent;
use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, Process, Value};
use wizard_monitors::CallsMonitor;
use wizard_suites::richards_benchmark;

#[derive(Clone, Copy)]
enum Mode {
    Uninstrumented,
    WizardCalls,
    Jvmti,
}

fn run_once(loops: i32, mode: Mode) -> Duration {
    let b = richards_benchmark(loops);
    let start = Instant::now();
    let mut p = Process::new(b.module.clone(), EngineConfig::tiered(), &Linker::new())
        .expect("richards instantiates");
    let _keep: Option<Box<dyn std::any::Any>> = match mode {
        Mode::Uninstrumented => None,
        Mode::WizardCalls => {
            let m = p.attach_monitor(CallsMonitor::new()).expect("attach");
            Some(Box::new(m))
        }
        Mode::Jvmti => Some(Box::new(Agent::attach(&mut p).expect("attach"))),
    };
    p.invoke_export("run", &[Value::I32(loops)]).expect("runs");
    start.elapsed()
}

fn avg(loops: i32, mode: Mode, n: u32) -> f64 {
    let mut total = Duration::ZERO;
    for _ in 0..n {
        total += run_once(loops, mode);
    }
    (total / n).as_secs_f64()
}

fn main() {
    let n = wizard_bench::runs();
    println!("=== §6.4: MethodEntry interception on Richards ===");
    println!("{:<10} {:>16} {:>16}", "loops", "JVMTI-style", "Wizard Calls");
    let base_u = avg(0, Mode::Uninstrumented, n);
    let base_w = avg(0, Mode::WizardCalls, n);
    let base_j = avg(0, Mode::Jvmti, n);
    for loops in [9_999, 99_999, 999_999] {
        let tu = avg(loops, Mode::Uninstrumented, n) - base_u;
        let tw = avg(loops, Mode::WizardCalls, n) - base_w;
        let tj = avg(loops, Mode::Jvmti, n) - base_j;
        let denom = tu.max(1e-9);
        println!("{loops:<10} {:>15.2}x {:>15.2}x", tj / denom, tw / denom);
    }
    println!("\n(paper: JVMTI 50-100x vs Wizard Calls 2.5-3x — shape: JVMTI-style");
    println!(" event boxing/dispatch costs an order of magnitude more than engine");
    println!(" probes counting at callsites)");
}
