//! Figures 6 and 7: relative execution times of the hotness and branch
//! monitors across all three suites and all systems — DynamoRIO-style,
//! Wasabi-style, Wizard interpreter, Wizard JIT (± intrinsification), and
//! static bytecode rewriting. Figure 7 is the per-suite geometric means,
//! printed at the end.

use std::collections::BTreeMap;

use wizard_bench::{baseline, geomean, measure, relative, Analysis, System};
use wizard_suites::all_suites;

const SYSTEMS: [System; 6] = [
    System::Dbi,
    System::Wasabi,
    System::Interp,
    System::JitIntrinsified,
    System::Jit,
    System::Rewriting,
];

fn main() {
    let suite = all_suites(wizard_bench::scale());
    let mut means: BTreeMap<(&str, &str, &str), Vec<f64>> = BTreeMap::new();
    for (analysis, label) in [(Analysis::Hotness, "hotness"), (Analysis::Branch, "branch")] {
        println!("=== Figure 6 ({label} monitor): relative execution time per program ===");
        print!("{:<12} {:<16}", "suite", "benchmark");
        for s in SYSTEMS {
            print!(" {:>13}", short(s));
        }
        println!();
        for b in &suite {
            print!("{:<12} {:<16}", b.suite, b.name);
            for system in SYSTEMS {
                let base = baseline(b, system);
                let m = measure(b, system, analysis);
                let r = relative(&m, &base);
                means.entry((label, b.suite, sys_key(system))).or_default().push(r);
                print!(" {r:>12.2}x");
            }
            println!();
        }
        println!();
    }
    println!("=== Figure 7: per-suite geometric means ===");
    for label in ["hotness", "branch"] {
        println!("[{label} monitor]");
        print!("{:<12}", "suite");
        for s in SYSTEMS {
            print!(" {:>13}", short(s));
        }
        println!();
        for suite_name in ["polybench", "libsodium", "ostrich"] {
            print!("{suite_name:<12}");
            for system in SYSTEMS {
                let xs = means
                    .get(&(label, suite_name, sys_key(system)))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                print!(" {:>12.2}x", geomean(xs));
            }
            println!();
        }
        println!();
    }
    println!("paper shape check: Wasabi >> DynamoRIO > Wizard JIT > rewriting ≳ JIT-intrins;");
    println!("interpreter has the lowest *relative* overhead (slow baseline, §5.4).");
}

fn short(s: System) -> &'static str {
    match s {
        System::Dbi => "DBI(native)",
        System::Wasabi => "Wasabi",
        System::Interp => "Interp",
        System::JitIntrinsified => "JIT-intr",
        System::Jit => "JIT",
        System::Rewriting => "Rewriting",
        System::InterpGlobal => "Interp-glob",
    }
}

fn sys_key(s: System) -> &'static str {
    short(s)
}
