//! Figure 3: relative execution time of the hotness and branch monitors
//! implemented with *local* probes vs a single *global* probe, in the
//! interpreter, across PolyBench. Also prints the §5.2 summary ranges.
//!
//! Emits `BENCH_probes.json` (schema in `EXPERIMENTS.md`) so the perf
//! trajectory accumulates across runs, and prints the same series as a
//! table.

use wizard_bench::json::Json;
use wizard_bench::{baseline, measure, relative, Analysis, System};
use wizard_suites::polybench_suite;

fn main() {
    let scale = wizard_bench::scale();
    let suite = polybench_suite(scale);
    println!("=== Figure 3: hotness & branch, local vs global probes (interpreter) ===");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "benchmark", "hot(local)", "hot(global)", "br(local)", "br(global)", "probe fires"
    );
    let mut br_local = Vec::new();
    let mut br_global = Vec::new();
    let mut hot_local = Vec::new();
    let mut hot_global = Vec::new();
    let mut series = Vec::new();
    for b in &suite {
        let base = baseline(b, System::Interp);
        let hl = measure(b, System::Interp, Analysis::Hotness);
        let hg = measure(b, System::InterpGlobal, Analysis::Hotness);
        let bl = measure(b, System::Interp, Analysis::Branch);
        let bg = measure(b, System::InterpGlobal, Analysis::Branch);
        assert_eq!(hl.checksum, base.checksum, "{}: hotness perturbed the program", b.name);
        assert_eq!(bl.checksum, base.checksum, "{}: branch perturbed the program", b.name);
        let (rhl, rhg) = (relative(&hl, &base), relative(&hg, &base));
        let (rbl, rbg) = (relative(&bl, &base), relative(&bg, &base));
        hot_local.push(rhl);
        hot_global.push(rhg);
        br_local.push(rbl);
        br_global.push(rbg);
        println!(
            "{:<16} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x {:>12}",
            b.name, rhl, rhg, rbl, rbg, hl.fires
        );
        series.push(Json::object([
            ("benchmark", Json::str(b.name)),
            ("hotness_local", Json::num(rhl)),
            ("hotness_global", Json::num(rhg)),
            ("branch_local", Json::num(rbl)),
            ("branch_global", Json::num(rbg)),
            ("fires", Json::num(hl.fires as f64)),
        ]));
    }
    let rng = |v: &[f64]| {
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        let max = v.iter().copied().fold(0.0f64, f64::max);
        (min, max)
    };
    println!("\n=== §5.2 summary (paper: branch local 1.0-2.2x vs global 7.7-16.4x) ===");
    let (a, b) = rng(&br_local);
    println!("branch monitor, local probes:  {a:.1}-{b:.1}x");
    let (a, b) = rng(&br_global);
    println!("branch monitor, global probe:  {a:.1}-{b:.1}x");
    let (a, b) = rng(&hot_local);
    println!("hotness monitor, local probes: {a:.1}-{b:.1}x");
    let (a, b) = rng(&hot_global);
    println!("hotness monitor, global probe: {a:.1}-{b:.1}x");

    let summary = |v: &[f64]| {
        let (min, max) = rng(v);
        Json::object([("min", Json::num(min)), ("max", Json::num(max))])
    };
    let mut fields = wizard_bench::metadata(
        "fig3_local_vs_global",
        &["polybench"],
        &wizard_engine::EngineConfig::interpreter(),
    );
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "summary".to_string(),
        Json::object([
            ("hotness_local", summary(&hot_local)),
            ("hotness_global", summary(&hot_global)),
            ("branch_local", summary(&br_local)),
            ("branch_global", summary(&br_global)),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_probes.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_probes.json");
    println!("\nwrote {path}");
}
