//! Serve latency: the work-stealing serving engine (`wizard-pool`'s
//! `ServeEngine`) against the static round-robin `Pool` on a mixed
//! multi-tenant fleet, measuring throughput *and* tail latency.
//!
//! Three tenants with distinct traffic shapes
//! (`wizard_suites::tenant_fleet`): `interactive` submits short
//! high-priority ingestion-corpus requests, `batch` runs PolyBench at
//! normal priority, and `background` runs long Richards / cubic kernels
//! at low priority. Every job carries a hotness monitor — this is an
//! *instrumentation* server, and both arms pay the same monitoring cost.
//!
//! Per worker count the bench runs three arms:
//!
//! 1. **unloaded** — only the interactive jobs, through the serving
//!    engine: the baseline p50 an interactive burst sees with the server
//!    to itself;
//! 2. **work-stealing** — the full mixed fleet through `ServeEngine`:
//!    jobs/s plus p50/p99/p999 latency split by priority;
//! 3. **round-robin** — the same fleet through the batch `Pool` at
//!    `shards = workers`: the static-assignment baseline (jobs/s only —
//!    the batch pool has no per-job admission timestamps).
//!
//! Outside smoke mode the bench asserts the serving engine's contract:
//! high-priority p99 under full mixed load stays within 5× the unloaded
//! p50 (strict priorities + slice-boundary preemption protect the
//! interactive tenant), and on hosts with ≥2 cores the work-stealing
//! arm's throughput beats round-robin by ≥1.3× at ≥2 workers (stealing
//! keeps workers busy where static assignment strands them behind the
//! background tenant's long jobs).
//!
//! Emits `BENCH_serve.json` (schema documented in `EXPERIMENTS.md`).
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS`, `WIZARD_SMOKE`,
//! `WIZARD_SERVE_JOBS` (fleet size, default 24, min 12),
//! `WIZARD_SERVE_SLICE` (fuel slice, default 10000).

use std::time::{Duration, Instant};

use wizard_bench::json::Json;
use wizard_engine::{EngineConfig, Shims, Value};
use wizard_monitors::HotnessMonitor;
use wizard_pool::{Job, Pool, PoolConfig, Priority, ServeConfig, ServeEngine};
use wizard_suites::TenantJob;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn class_priority(class: u8) -> Priority {
    match class {
        0 => Priority::High,
        1 => Priority::Normal,
        _ => Priority::Low,
    }
}

fn make_job(spec: &TenantJob, k: usize) -> Job {
    let mut job = Job::new(
        format!("{}-{k}", spec.name),
        spec.module.clone(),
        "run",
        vec![Value::I32(spec.n)],
    )
    .for_tenant(spec.tenant)
    .at_priority(class_priority(spec.class))
    .with_monitor(HotnessMonitor::new);
    if spec.uses_imports {
        let module = spec.module.clone();
        job = job.with_linker(move || {
            Shims::standard().linker_for(&module).expect("corpus module links against shims")
        });
    }
    job
}

/// Percentile of a sorted sample (nearest-rank); `q` in [0, 1].
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

struct Percentiles {
    p50: Duration,
    p99: Duration,
    p999: Duration,
}

fn percentiles(mut xs: Vec<Duration>) -> Percentiles {
    xs.sort();
    Percentiles {
        p50: percentile(&xs, 0.50),
        p99: percentile(&xs, 0.99),
        p999: percentile(&xs, 0.999),
    }
}

fn latency_json(p: &Percentiles) -> Json {
    Json::object([
        ("p50_ms", Json::num(ms(p.p50))),
        ("p99_ms", Json::num(ms(p.p99))),
        ("p999_ms", Json::num(ms(p.p999))),
    ])
}

/// One work-stealing run: submit the fleet as one burst, wait for every
/// job, return (wall, per-job (priority, latency), engine summary).
fn serve_run(
    fleet: &[TenantJob],
    workers: usize,
    engine_config: &EngineConfig,
) -> (Duration, Vec<(Priority, Duration)>, wizard_pool::ServeSummary) {
    let engine = ServeEngine::new(ServeConfig {
        workers,
        engine: engine_config.clone(),
        ..ServeConfig::default()
    });
    let start = Instant::now();
    let handles: Vec<_> = fleet
        .iter()
        .enumerate()
        .map(|(k, spec)| {
            engine
                .submit_blocking(make_job(spec, k))
                .handle()
                .expect("bench fleet fits the default admission queue")
        })
        .collect();
    let mut latencies = Vec::with_capacity(handles.len());
    for h in handles {
        let out = h.wait();
        assert!(out.status.is_ok(), "serve job {} failed: {:?}", out.name, out.status);
        latencies.push((out.priority, out.latency));
    }
    let wall = start.elapsed();
    (wall, latencies, engine.shutdown())
}

/// One round-robin baseline run through the batch `Pool`.
fn pool_run(fleet: &[TenantJob], shards: usize, engine_config: &EngineConfig) -> (Duration, u64) {
    let mut pool = Pool::new(PoolConfig { shards, engine: engine_config.clone() });
    for (k, spec) in fleet.iter().enumerate() {
        pool.submit(make_job(spec, k));
    }
    let start = Instant::now();
    let outcome = pool.run();
    let wall = start.elapsed();
    assert!(outcome.all_ok(), "pool fleet job failed: {:?}", outcome.jobs);
    let instrs = outcome
        .merged_report("hotness")
        .and_then(|r| r.get("summary"))
        .and_then(|s| s.count_of("total instruction executions"))
        .unwrap_or(0);
    (wall, instrs)
}

fn main() {
    let scale = wizard_bench::scale();
    let smoke = wizard_bench::smoke();
    let runs = wizard_bench::runs();
    let cores = wizard_bench::host_parallelism();
    let jobs = env_u64("WIZARD_SERVE_JOBS", 24).max(12) as usize;
    let slice = env_u64("WIZARD_SERVE_SLICE", 10_000);
    let engine_config = EngineConfig::builder().fuel_slice(slice).build();

    let fleet = wizard_suites::tenant_fleet(scale, jobs);
    let interactive: Vec<TenantJob> =
        fleet.iter().filter(|j| j.tenant == "interactive").cloned().collect();
    let names: Vec<String> = fleet.iter().map(|j| j.name.to_string()).collect();

    let worker_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4] };
    println!(
        "=== serve latency: {jobs}-job tenant fleet, fuel slice {slice}, {cores} core(s), \
         {runs} run(s) ==="
    );
    if cores < 2 {
        println!("note: 1 core — work-stealing vs round-robin throughput gap will not show");
    }
    println!(
        "{:<8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>12} {:>10}",
        "workers",
        "ws jobs/s",
        "rr jobs/s",
        "ws/rr",
        "hi p50 ms",
        "hi p99 ms",
        "unload p50",
        "steals"
    );

    let mut series = Vec::new();
    let mut tenants_json: Option<Json> = None;
    for &w in worker_counts {
        // Arm 1: unloaded interactive burst — the latency baseline.
        let mut unloaded_lat: Vec<Duration> = Vec::new();
        for _ in 0..runs {
            let (_, lats, _) = serve_run(&interactive, w, &engine_config);
            unloaded_lat.extend(lats.into_iter().map(|(_, d)| d));
        }
        let unloaded = percentiles(unloaded_lat);

        // Arm 2: the full mixed fleet under work stealing. Latencies are
        // pooled across runs; throughput is the best run.
        let mut ws_wall = Duration::MAX;
        let mut by_priority: [Vec<Duration>; 3] = Default::default();
        let mut last_summary = None;
        for _ in 0..runs {
            let (wall, lats, summary) = serve_run(&fleet, w, &engine_config);
            ws_wall = ws_wall.min(wall);
            for (p, d) in lats {
                by_priority[p.index()].push(d);
            }
            last_summary = Some(summary);
        }
        let summary = last_summary.expect("at least one run");
        let ws_jobs_per_s = jobs as f64 / ws_wall.as_secs_f64().max(1e-9);
        let [high, normal, low] = by_priority;
        let (high, normal, low) = (percentiles(high), percentiles(normal), percentiles(low));

        // Arm 3: the same fleet under static round-robin sharding.
        let mut rr_wall = Duration::MAX;
        let mut rr_instrs = 0;
        for _ in 0..runs {
            let (wall, instrs) = pool_run(&fleet, w, &engine_config);
            rr_wall = rr_wall.min(wall);
            rr_instrs = instrs;
        }
        let rr_jobs_per_s = jobs as f64 / rr_wall.as_secs_f64().max(1e-9);
        let ws_over_rr = ws_jobs_per_s / rr_jobs_per_s.max(1e-9);

        // Transparency: both schedulers execute the same instructions and
        // the monitors count every one of them.
        let ws_instrs = summary
            .merged_report("hotness")
            .and_then(|r| r.get("summary"))
            .and_then(|s| s.count_of("total instruction executions"))
            .unwrap_or(0);
        assert_eq!(
            ws_instrs, rr_instrs,
            "instruction counts diverged between schedulers at {w} workers"
        );

        println!(
            "{:<8} {:>12.2} {:>12.2} {:>7.2}x {:>12.3} {:>12.3} {:>12.3} {:>10}",
            w,
            ws_jobs_per_s,
            rr_jobs_per_s,
            ws_over_rr,
            ms(high.p50),
            ms(high.p99),
            ms(unloaded.p50),
            summary.stats.steals,
        );

        // The serving engine's latency contract: mixed background load may
        // not blow up the interactive tenant's tail.
        if !smoke {
            let bound = unloaded.p50.mul_f64(5.0).max(Duration::from_millis(1));
            assert!(
                high.p99 <= bound,
                "high-priority p99 {:?} exceeds 5x unloaded p50 {:?} at {w} workers",
                high.p99,
                unloaded.p50
            );
        }
        // The throughput contract needs real parallelism to show: with one
        // hardware thread every scheduler serializes on the same core.
        if !smoke && w >= 2 && cores >= 2 {
            assert!(
                ws_over_rr >= 1.3,
                "work stealing only {ws_over_rr:.2}x round robin at {w} workers ({cores} cores)"
            );
        }

        if tenants_json.is_none() {
            tenants_json = Some(Json::array(
                summary
                    .tenants
                    .iter()
                    .map(|t| {
                        Json::object([
                            ("tenant", Json::str(&t.tenant)),
                            ("fuel_spent", Json::num(t.fuel_spent as f64)),
                            ("throttles", Json::num(t.throttles as f64)),
                            ("jobs", Json::num(t.jobs as f64)),
                        ])
                    })
                    .collect(),
            ));
        }
        series.push(Json::object([
            ("workers", Json::num(w as f64)),
            ("jobs", Json::num(jobs as f64)),
            (
                "unloaded",
                Json::object([
                    ("p50_ms", Json::num(ms(unloaded.p50))),
                    ("p99_ms", Json::num(ms(unloaded.p99))),
                ]),
            ),
            (
                "work_stealing",
                Json::object([
                    ("wall_ms", Json::num(ms(ws_wall))),
                    ("jobs_per_s", Json::num(ws_jobs_per_s)),
                    (
                        "latency",
                        Json::object([
                            ("high", latency_json(&high)),
                            ("normal", latency_json(&normal)),
                            ("low", latency_json(&low)),
                        ]),
                    ),
                    ("steals", Json::num(summary.stats.steals as f64)),
                    ("slices_executed", Json::num(summary.stats.slices_executed as f64)),
                    ("queue_depth_max", Json::num(summary.stats.queue_depth_max as f64)),
                    ("budget_throttles", Json::num(summary.stats.budget_throttles as f64)),
                    ("suspensions", Json::num(summary.stats.suspensions as f64)),
                    ("instructions_counted", Json::num(ws_instrs as f64)),
                ]),
            ),
            (
                "round_robin",
                Json::object([
                    ("wall_ms", Json::num(ms(rr_wall))),
                    ("jobs_per_s", Json::num(rr_jobs_per_s)),
                    ("instructions_counted", Json::num(rr_instrs as f64)),
                ]),
            ),
            ("ws_over_rr", Json::num(ws_over_rr)),
        ]));
    }

    let suite_names: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut fields = wizard_bench::metadata("serve_latency", &suite_names, &engine_config);
    fields.push(("series".to_string(), Json::array(series)));
    if let Some(t) = tenants_json {
        fields.push(("tenants".to_string(), t));
    }
    let doc = Json::Obj(fields);
    let path = "BENCH_serve.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_serve.json");
    println!("\nwrote {path}");
    println!("(instruction counts are asserted identical across both schedulers and all");
    println!(" worker counts: stealing and migration are transparent to instrumentation)");
}
