//! Figure 4: relative execution time of the hotness and branch monitors
//! in the JIT tier, with and without probe intrinsification, across
//! PolyBench (ratios relative to uninstrumented JIT execution).
//!
//! Emits `BENCH_intrinsify.json` (schema in `EXPERIMENTS.md`) so the
//! perf trajectory accumulates across runs, and prints the same series
//! as a table.

use wizard_bench::json::Json;
use wizard_bench::{baseline, measure, relative, Analysis, System};
use wizard_suites::polybench_suite;

fn main() {
    let scale = wizard_bench::scale();
    let suite = polybench_suite(scale);
    println!("=== Figure 4: JIT with and without intrinsification (PolyBench) ===");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14} {:>12}",
        "benchmark", "hot(intrins)", "hot(JIT)", "br(intrins)", "br(JIT)", "probe fires"
    );
    let mut ranges: [Vec<f64>; 4] = Default::default();
    let mut series = Vec::new();
    for b in &suite {
        let base = baseline(b, System::JitIntrinsified);
        let hi = measure(b, System::JitIntrinsified, Analysis::Hotness);
        let hj = measure(b, System::Jit, Analysis::Hotness);
        let bi = measure(b, System::JitIntrinsified, Analysis::Branch);
        let bj = measure(b, System::Jit, Analysis::Branch);
        assert_eq!(hi.checksum, base.checksum, "{}: perturbed", b.name);
        let r = [
            relative(&hi, &base),
            relative(&hj, &base),
            relative(&bi, &base),
            relative(&bj, &base),
        ];
        for (acc, v) in ranges.iter_mut().zip(r) {
            acc.push(v);
        }
        println!(
            "{:<16} {:>13.2}x {:>13.2}x {:>13.2}x {:>13.2}x {:>12}",
            b.name, r[0], r[1], r[2], r[3], hi.fires
        );
        series.push(Json::object([
            ("benchmark", Json::str(b.name)),
            ("hotness_intrinsified", Json::num(r[0])),
            ("hotness_jit", Json::num(r[1])),
            ("branch_intrinsified", Json::num(r[2])),
            ("branch_jit", Json::num(r[3])),
            ("fires", Json::num(hi.fires as f64)),
        ]));
    }
    let rng = |v: &[f64]| {
        (v.iter().copied().fold(f64::INFINITY, f64::min), v.iter().copied().fold(0.0f64, f64::max))
    };
    println!("\n=== §5.3 summary ===");
    let (a, b) = rng(&ranges[1]);
    println!("hotness JIT (paper 7-134x):             {a:.1}-{b:.1}x");
    let (a, b) = rng(&ranges[0]);
    println!("hotness JIT intrinsified (paper 2.2-7.7x): {a:.1}-{b:.1}x");
    let (a, b) = rng(&ranges[3]);
    println!("branch JIT (paper 1.0-16.6x):           {a:.1}-{b:.1}x");
    let (a, b) = rng(&ranges[2]);
    println!("branch JIT intrinsified (paper 1.0-2.8x):  {a:.1}-{b:.1}x");

    let summary = |v: &[f64]| {
        let (min, max) = rng(v);
        Json::object([("min", Json::num(min)), ("max", Json::num(max))])
    };
    let mut fields = wizard_bench::metadata(
        "fig4_jit_intrinsify",
        &["polybench"],
        &wizard_engine::EngineConfig::jit(),
    );
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "summary".to_string(),
        Json::object([
            ("hotness_intrinsified", summary(&ranges[0])),
            ("hotness_jit", summary(&ranges[1])),
            ("branch_intrinsified", summary(&ranges[2])),
            ("branch_jit", summary(&ranges[3])),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_intrinsify.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_intrinsify.json");
    println!("\nwrote {path}");
}
