//! Pool throughput: a richards/polybench fleet executed by `wizard-pool`
//! across 1, 2 and 4 shards.
//!
//! This is the multi-tenant experiment the paper's single-process engine
//! cannot express: N instrumented processes time-sliced over M worker
//! threads (round-robin fuel slices within a worker), every process
//! carrying a hotness monitor whose per-job reports are merged fleet-wide.
//! Aggregate throughput (jobs/s) should improve from 1 → 4 shards on a
//! multi-core host while the merged instruction counts stay *identical* —
//! slicing and sharding are transparent to instrumentation.
//!
//! Emits `BENCH_pool.json` (schema documented in `EXPERIMENTS.md`) and
//! prints the same series as a table.
//!
//! Environment: `WIZARD_SCALE` (problem size), `WIZARD_POOL_JOBS` (fleet
//! size, default 12, min 8), `WIZARD_POOL_SLICE` (fuel slice, default
//! 20000).

use std::time::Instant;

use wizard_bench::json::Json;
use wizard_engine::{EngineConfig, Value};
use wizard_monitors::HotnessMonitor;
use wizard_pool::{Job, Pool, PoolConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let scale = wizard_bench::scale();
    let jobs = env_u64("WIZARD_POOL_JOBS", 12).max(8) as usize;
    let slice = env_u64("WIZARD_POOL_SLICE", 20_000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let fleet = wizard_suites::fleet(scale, jobs);
    let names: Vec<String> = fleet.iter().map(|b| b.name.to_string()).collect();

    println!("=== pool throughput: {jobs}-process fleet, fuel slice {slice}, {cores} core(s) ===");
    if cores < 4 {
        println!("note: only {cores} core(s) available — shard scaling needs ≥4 cores to show");
    }
    println!(
        "{:<7} {:>10} {:>14} {:>16} {:>13} {:>12}",
        "shards", "wall ms", "jobs/s", "instrs counted", "suspensions", "speedup"
    );

    let mut series = Vec::new();
    let mut base_jobs_per_s = 0.0;
    for shards in [1usize, 2, 4] {
        let config =
            PoolConfig { shards, engine: EngineConfig::builder().fuel_slice(slice).build() };
        let mut pool = Pool::new(config);
        for (k, b) in fleet.iter().enumerate() {
            pool.submit(
                Job::new(format!("{}-{k}", b.name), b.module.clone(), "run", vec![Value::I32(b.n)])
                    .with_monitor(HotnessMonitor::new),
            );
        }
        let start = Instant::now();
        let outcome = pool.run();
        let wall = start.elapsed();
        assert!(outcome.all_ok(), "fleet job failed: {:?}", outcome.jobs);

        let instrs = outcome
            .merged_report("hotness")
            .and_then(|r| r.get("summary"))
            .and_then(|s| s.count_of("total instruction executions"))
            .unwrap_or(0);
        let jobs_per_s = jobs as f64 / wall.as_secs_f64().max(1e-9);
        if shards == 1 {
            base_jobs_per_s = jobs_per_s;
        }
        println!(
            "{:<7} {:>10.1} {:>14.2} {:>16} {:>13} {:>11.2}x",
            shards,
            wall.as_secs_f64() * 1e3,
            jobs_per_s,
            instrs,
            outcome.stats.suspensions,
            jobs_per_s / base_jobs_per_s.max(1e-9),
        );
        series.push(Json::object([
            ("shards", Json::num(shards as f64)),
            ("wall_ms", Json::num(wall.as_secs_f64() * 1e3)),
            ("jobs", Json::num(jobs as f64)),
            ("throughput_jobs_per_s", Json::num(jobs_per_s)),
            ("fuel_consumed", Json::num(outcome.stats.fuel_consumed as f64)),
            ("suspensions", Json::num(outcome.stats.suspensions as f64)),
            ("instructions_counted", Json::num(instrs as f64)),
        ]));
    }

    let suite_names: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut fields = wizard_bench::metadata(
        "pool_throughput",
        &suite_names,
        &EngineConfig::builder().fuel_slice(slice).build(),
    );
    fields.push(("series".to_string(), Json::array(series)));
    let doc = Json::Obj(fields);
    let path = "BENCH_pool.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_pool.json");
    println!("\nwrote {path}");
    println!("(merged instruction counts must be identical across shard counts: slicing");
    println!(" and sharding are transparent to instrumentation)");
}
