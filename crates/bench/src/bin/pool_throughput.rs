//! Pool throughput: a richards/polybench fleet executed at 1, 2 and 4
//! workers by both of `wizard-pool`'s schedulers —
//!
//! * **round-robin** — the batch [`Pool`]: static job→shard assignment,
//!   fuel-sliced round-robin within each shard (the engine this bench
//!   originally measured, kept as the baseline arm);
//! * **work-stealing** — the [`ServeEngine`]: per-worker deques with
//!   randomized stealing, so a shard that drew the short jobs steals
//!   from one stuck behind a long richards run.
//!
//! This is the multi-tenant experiment the paper's single-process engine
//! cannot express: N instrumented processes time-sliced over M worker
//! threads, every process carrying a hotness monitor whose per-job
//! reports are merged fleet-wide. Aggregate throughput (jobs/s) should
//! improve from 1 → 4 workers on a multi-core host while the merged
//! instruction counts stay *identical* across every arm — slicing,
//! sharding and stealing are transparent to instrumentation.
//!
//! Emits `BENCH_pool.json` (schema documented in `EXPERIMENTS.md`) and
//! prints the same series as a table.
//!
//! Environment: `WIZARD_SCALE` (problem size), `WIZARD_POOL_JOBS` (fleet
//! size, default 12, min 8), `WIZARD_POOL_SLICE` (fuel slice, default
//! 20000).

use std::time::Instant;

use wizard_bench::json::Json;
use wizard_engine::{EngineConfig, EngineStats, Value};
use wizard_monitors::HotnessMonitor;
use wizard_pool::{Job, Pool, PoolConfig, ServeConfig, ServeEngine};
use wizard_suites::Benchmark;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn make_job(b: &Benchmark, k: usize) -> Job {
    Job::new(format!("{}-{k}", b.name), b.module.clone(), "run", vec![Value::I32(b.n)])
        .with_monitor(HotnessMonitor::new)
}

fn instructions(report: Option<&wizard_engine::Report>) -> u64 {
    report
        .and_then(|r| r.get("summary"))
        .and_then(|s| s.count_of("total instruction executions"))
        .unwrap_or(0)
}

/// One arm's measurement: wall time plus the merged fleet counters.
struct Arm {
    wall_s: f64,
    stats: EngineStats,
    instrs: u64,
}

fn run_round_robin(fleet: &[Benchmark], shards: usize, engine: &EngineConfig) -> Arm {
    let mut pool = Pool::new(PoolConfig { shards, engine: engine.clone() });
    for (k, b) in fleet.iter().enumerate() {
        pool.submit(make_job(b, k));
    }
    let start = Instant::now();
    let outcome = pool.run();
    let wall_s = start.elapsed().as_secs_f64();
    assert!(outcome.all_ok(), "fleet job failed: {:?}", outcome.jobs);
    let instrs = instructions(outcome.merged_report("hotness"));
    Arm { wall_s, stats: outcome.stats, instrs }
}

fn run_work_stealing(fleet: &[Benchmark], workers: usize, engine: &EngineConfig) -> Arm {
    let serve =
        ServeEngine::new(ServeConfig { workers, engine: engine.clone(), ..ServeConfig::default() });
    let start = Instant::now();
    let handles: Vec<_> = fleet
        .iter()
        .enumerate()
        .map(|(k, b)| serve.try_submit(make_job(b, k)).handle().expect("queue has space"))
        .collect();
    for h in &handles {
        let out = h.wait();
        assert!(out.status.is_ok(), "serve job {} failed: {:?}", out.name, out.status);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let summary = serve.shutdown();
    let instrs = instructions(summary.merged_report("hotness"));
    Arm { wall_s, stats: summary.stats, instrs }
}

fn main() {
    let scale = wizard_bench::scale();
    let jobs = env_u64("WIZARD_POOL_JOBS", 12).max(8) as usize;
    let slice = env_u64("WIZARD_POOL_SLICE", 20_000);
    let cores = wizard_bench::host_parallelism();
    let engine = EngineConfig::builder().fuel_slice(slice).build();
    let fleet = wizard_suites::fleet(scale, jobs);
    let names: Vec<String> = fleet.iter().map(|b| b.name.to_string()).collect();

    println!("=== pool throughput: {jobs}-process fleet, fuel slice {slice}, {cores} core(s) ===");
    if cores < 4 {
        println!("note: only {cores} core(s) available — worker scaling needs ≥4 cores to show");
    }
    println!(
        "{:<14} {:<8} {:>10} {:>12} {:>16} {:>12} {:>8}",
        "scheduler", "workers", "wall ms", "jobs/s", "instrs counted", "suspensions", "steals"
    );

    let mut series = Vec::new();
    let mut reference_instrs = None;
    for workers in [1usize, 2, 4] {
        for ws in [false, true] {
            let arm = if ws {
                run_work_stealing(&fleet, workers, &engine)
            } else {
                run_round_robin(&fleet, workers, &engine)
            };
            let scheduler = if ws { "work_stealing" } else { "round_robin" };
            let jobs_per_s = jobs as f64 / arm.wall_s.max(1e-9);
            // The transparency invariant: every arm, at every worker
            // count, under either scheduler, counts the same instructions.
            match reference_instrs {
                None => reference_instrs = Some(arm.instrs),
                Some(r) => assert_eq!(
                    arm.instrs, r,
                    "instruction counts diverged: {scheduler} at {workers} workers"
                ),
            }
            println!(
                "{:<14} {:<8} {:>10.1} {:>12.2} {:>16} {:>12} {:>8}",
                scheduler,
                workers,
                arm.wall_s * 1e3,
                jobs_per_s,
                arm.instrs,
                arm.stats.suspensions,
                arm.stats.steals,
            );
            series.push(Json::object([
                ("scheduler", Json::str(scheduler)),
                ("workers", Json::num(workers as f64)),
                ("wall_ms", Json::num(arm.wall_s * 1e3)),
                ("jobs", Json::num(jobs as f64)),
                ("throughput_jobs_per_s", Json::num(jobs_per_s)),
                ("fuel_consumed", Json::num(arm.stats.fuel_consumed as f64)),
                ("suspensions", Json::num(arm.stats.suspensions as f64)),
                ("steals", Json::num(arm.stats.steals as f64)),
                ("slices_executed", Json::num(arm.stats.slices_executed as f64)),
                ("instructions_counted", Json::num(arm.instrs as f64)),
            ]));
        }
    }

    let suite_names: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut fields = wizard_bench::metadata("pool_throughput", &suite_names, &engine);
    fields.push(("series".to_string(), Json::array(series)));
    let doc = Json::Obj(fields);
    let path = "BENCH_pool.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_pool.json");
    println!("\nwrote {path}");
    println!("(merged instruction counts must be identical across schedulers and worker");
    println!(" counts: slicing, sharding and stealing are transparent to instrumentation)");
}
