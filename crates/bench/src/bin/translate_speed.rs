//! Translation-pipeline speed over the real-module corpus: per-module
//! decode, validate, artifact-build, and lower time from raw `.wasm`
//! bytes, plus cold vs warm instantiation through `wizard-pool`'s
//! `ArtifactCache`.
//!
//! Where `instantiate_throughput` isolates what a *shared artifact* buys
//! a fleet on synthetic workloads, this bench walks the checked-in
//! ingestion corpus (`wizard_suites::corpus`) — production-shaped modules
//! with imports, start functions, tables, and data segments — and times
//! each stage of the frontend the way an embedder pays for it:
//!
//! * `decode`   — raw bytes → `Module` (`wizard_wasm::decode`);
//! * `validate` — type/stack checking alone (`wizard_wasm::validate`);
//! * `artifact` — `ModuleArtifact::new`, i.e. validate + shared-code
//!   build, the cache-miss cost inside `ArtifactCache::lookup`;
//! * `lower`    — `lower_all()` on a pre-built artifact (pre-decoded
//!   sidetable form for the lowered interpreter and JIT);
//! * `cold`/`warm` — `Process::new` from scratch vs `ArtifactCache`
//!   hit + `Process::instantiate` (link-only), imports resolved through
//!   the standard host shims.
//!
//! Emits `BENCH_translate.json` (schema in `EXPERIMENTS.md`) with the
//! shared metadata block. Outside smoke mode the corpus-total cold
//! instantiation time is asserted slower than the warm path — the warm
//! path skips validation and shares code, so if this ever inverts, the
//! cache is not actually amortizing the frontend.
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS`, `WIZARD_SMOKE`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wizard_bench::json::Json;
use wizard_bench::metadata;
use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, ModuleArtifact, Process, Shims};
use wizard_pool::ArtifactCache;
use wizard_suites::corpus::{corpus, CorpusEntry};
use wizard_wasm::decode::decode;
use wizard_wasm::validate::validate;

/// Best-of-3 batches, mean within a batch (same discipline as the other
/// figure emitters).
fn time_per_iter(iters: u32, mut work: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            work();
        }
        best = best.min(start.elapsed() / iters);
    }
    best
}

struct Row {
    name: &'static str,
    input_bytes: usize,
    decode: Duration,
    validate: Duration,
    artifact: Duration,
    lower: Duration,
    cold: Duration,
    warm: Duration,
    cache_hits: u64,
    cache_misses: u64,
    uses_imports: bool,
}

fn measure(e: &CorpusEntry, iters: u32) -> Row {
    let config = EngineConfig::default();
    let shims = Shims::standard();
    let linker = if e.uses_imports {
        shims.linker_for(&e.module).expect("standard shims satisfy the corpus")
    } else {
        Linker::new()
    };

    let dec = time_per_iter(iters, || {
        let m = decode(&e.bytes).expect("corpus binary decodes");
        std::hint::black_box(&m);
    });
    let module = decode(&e.bytes).expect("corpus binary decodes");

    let val = time_per_iter(iters, || {
        let meta = validate(&module).expect("corpus module validates");
        std::hint::black_box(&meta);
    });

    let art = time_per_iter(iters, || {
        let a = ModuleArtifact::new(module.clone()).expect("corpus module validates");
        std::hint::black_box(&a);
    });

    // Lowering memoizes into the artifact, so each timed call needs a
    // fresh artifact; those are pre-built OUTSIDE the timed region, with
    // the iteration count capped to bound the pre-build pool.
    let lower_iters = iters.min(16);
    let mut pool: Vec<ModuleArtifact> = (0..3 * lower_iters)
        .map(|_| ModuleArtifact::new(module.clone()).expect("corpus module validates"))
        .collect();
    let low = time_per_iter(lower_iters, || {
        let a = pool.pop().expect("pre-built artifact available");
        a.lower_all();
        std::hint::black_box(&a);
    });

    // Cold: the whole pipeline per instantiation (what an embedder pays
    // without the cache).
    let cold = time_per_iter(iters, || {
        let p = Process::new(module.clone(), config.clone(), &linker).expect("instantiates");
        std::hint::black_box(&p);
    });

    // Warm: every instantiation goes through the pool's content-addressed
    // cache — one miss up front (primed here, with lowering forced), then
    // hit + link-only `Process::instantiate` per iteration.
    let cache = ArtifactCache::new();
    let (primed, hit) = cache.lookup(&module).expect("corpus module validates");
    assert!(!hit, "{}: first cache lookup must miss", e.name);
    primed.lower_all();
    let warm = time_per_iter(iters, || {
        let (artifact, hit) = cache.lookup(&module).expect("corpus module validates");
        assert!(hit, "warm lookups must hit the primed cache");
        let p = Process::instantiate(Arc::clone(&artifact), config.clone(), &linker)
            .expect("instantiates");
        std::hint::black_box(&p);
    });
    assert_eq!(cache.misses(), 1, "{}: only the priming lookup may miss", e.name);

    Row {
        name: e.name,
        input_bytes: e.bytes.len(),
        decode: dec,
        validate: val,
        artifact: art,
        lower: low,
        cold,
        warm,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        uses_imports: e.uses_imports,
    }
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    let scale = wizard_bench::scale();
    let iters = match scale {
        wizard_suites::Scale::Test => 8,
        wizard_suites::Scale::Small => 60,
        wizard_suites::Scale::Medium => 200,
    } * wizard_bench::runs();

    let entries = corpus(scale);

    println!("=== translation speed over the ingestion corpus ===");
    println!(
        "{:<12} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "module", "bytes", "decode", "validate", "artifact", "lower", "cold", "warm", "speedup"
    );

    let rows: Vec<Row> = entries.iter().map(|e| measure(e, iters)).collect();

    let mut series = Vec::new();
    let mut cold_total = Duration::ZERO;
    let mut warm_total = Duration::ZERO;
    let mut pipeline_total = Duration::ZERO;
    for r in &rows {
        let speedup = r.cold.as_secs_f64() / r.warm.as_secs_f64().max(1e-12);
        cold_total += r.cold;
        warm_total += r.warm;
        pipeline_total += r.decode + r.validate + r.lower;
        println!(
            "{:<12} {:>7} {:>8.1}us {:>8.1}us {:>8.1}us {:>8.1}us {:>8.1}us {:>8.1}us {:>7.1}x",
            r.name,
            r.input_bytes,
            us(r.decode),
            us(r.validate),
            us(r.artifact),
            us(r.lower),
            us(r.cold),
            us(r.warm),
            speedup
        );
        series.push(Json::object([
            ("module", Json::str(r.name)),
            ("input_bytes", Json::num(r.input_bytes as f64)),
            ("decode_us", Json::num(us(r.decode))),
            ("validate_us", Json::num(us(r.validate))),
            ("artifact_build_us", Json::num(us(r.artifact))),
            ("lower_us", Json::num(us(r.lower))),
            ("cold_inst_us", Json::num(us(r.cold))),
            ("warm_inst_us", Json::num(us(r.warm))),
            ("warm_speedup", Json::num(speedup)),
            ("cache_hits", Json::num(r.cache_hits as f64)),
            ("cache_misses", Json::num(r.cache_misses as f64)),
            ("uses_imports", Json::num(f64::from(u8::from(r.uses_imports)))),
        ]));
    }

    let total_speedup = cold_total.as_secs_f64() / warm_total.as_secs_f64().max(1e-12);
    println!(
        "\ncorpus totals: cold {:.1}us, warm {:.1}us ({total_speedup:.2}x), \
         decode+validate+lower {:.1}us",
        us(cold_total),
        us(warm_total),
        us(pipeline_total)
    );

    // Assert before writing (matching the other emitters): a regression
    // run must not leave a failing row for trajectory tooling to ingest.
    if wizard_bench::smoke() {
        println!("(smoke mode: skipping the warm-faster-than-cold assertion)");
    } else {
        assert!(
            total_speedup >= 1.05,
            "cache-warm instantiation must beat the cold pipeline across the corpus \
             (got {total_speedup:.2}x)"
        );
    }

    let mut fields = metadata("translate_speed", &["corpus"], &EngineConfig::default());
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "summary".to_string(),
        Json::object([
            ("modules", Json::num(rows.len() as f64)),
            ("cold_total_us", Json::num(us(cold_total))),
            ("warm_total_us", Json::num(us(warm_total))),
            ("warm_speedup", Json::num(total_speedup)),
            ("pipeline_total_us", Json::num(us(pipeline_total))),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_translate.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_translate.json");
    println!("wrote {path}");
}
