//! Instantiation throughput: cold (validate + build + link) vs warm
//! (link-only from a shared `ModuleArtifact`), plus per-process resident
//! code size under copy-on-write instrumentation overlays.
//!
//! A fleet running N jobs of the same kernel used to pay the whole code
//! pipeline — decode/validate/lower/compile — N times and hold N copies of
//! byte-identical code. The shared-artifact refactor pays it once:
//! `ModuleArtifact::new` validates and owns the per-function lowered code,
//! and `Process::instantiate` only links (imports, memory/table/segments).
//! This benchmark measures what that buys per instantiation, and what a
//! process actually keeps resident when it instruments one function.
//!
//! Emits `BENCH_instantiate.json` (schema in `EXPERIMENTS.md`) with the
//! shared metadata block. Outside smoke mode, warm instantiation of the
//! validation-dominated `wide-60` workload is asserted ≥ 5× faster than
//! cold — the acceptance bar for the artifact split. (Kernels with large
//! linear memories pay the same memory-zeroing cost on both paths, which
//! is why the bar is pinned to the workload that isolates the pipeline.)
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS`, `WIZARD_SMOKE`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use wizard_bench::json::Json;
use wizard_bench::metadata;
use wizard_engine::store::Linker;
use wizard_engine::{CountProbe, EngineConfig, ModuleArtifact, Process};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::ValType::I32;

/// A wide, memory-less module: 60 straight-line functions. Validation and
/// lowering dominate its instantiation cost, isolating exactly the work
/// the shared artifact amortizes.
fn wide_module() -> Module {
    let mut mb = ModuleBuilder::new();
    for k in 0..60 {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0);
        for j in 0..24 {
            f.i32_const(k * 31 + j).i32_add().i32_const(3).i32_mul();
        }
        mb.add_func(&format!("f{k}"), f);
    }
    mb.build().expect("wide module validates")
}

/// Mean seconds per iteration of `work`, best of 3 batches.
fn time_per_iter(iters: u32, mut work: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            work();
        }
        best = best.min(start.elapsed() / iters);
    }
    best
}

struct Row {
    name: &'static str,
    cold: Duration,
    warm: Duration,
    artifact_bytes: usize,
    probed_overlay_bytes: usize,
}

fn measure(name: &'static str, module: &Module, iters: u32) -> Row {
    let config = EngineConfig::default();

    // Cold: the owned-module path — every instantiation validates, builds
    // a private artifact, links. (The module clone is part of the cold
    // fleet story too: each job owns its module.)
    let cold = time_per_iter(iters, || {
        let p = Process::new(module.clone(), config.clone(), &Linker::new()).expect("instantiates");
        std::hint::black_box(&p);
    });

    // Warm: the shared path — validate + lower once, then link-only
    // instantiations off the Arc.
    let artifact = Arc::new(ModuleArtifact::new(module.clone()).expect("validates"));
    artifact.lower_all();
    let warm = time_per_iter(iters, || {
        let p = Process::instantiate(Arc::clone(&artifact), config.clone(), &Linker::new())
            .expect("instantiates");
        std::hint::black_box(&p);
    });

    // Resident code: a clean sibling keeps 0 private bytes; probing one
    // function copy-on-writes exactly that function.
    let mut probed = Process::instantiate(Arc::clone(&artifact), config.clone(), &Linker::new())
        .expect("instantiates");
    assert_eq!(probed.resident_overlay_bytes(), 0, "{name}: clean process holds private code");
    let func = artifact.module().num_imported_funcs();
    probed.add_local_probe_val(func, 0, CountProbe::new()).expect("probes");
    let probed_overlay_bytes = probed.resident_overlay_bytes();
    assert!(probed_overlay_bytes > 0, "{name}: probe did not copy-on-write");

    Row { name, cold, warm, artifact_bytes: artifact.code_size_bytes(), probed_overlay_bytes }
}

fn main() {
    let scale = wizard_bench::scale();
    let iters = match scale {
        wizard_suites::Scale::Test => 10,
        wizard_suites::Scale::Small => 100,
        wizard_suites::Scale::Medium => 300,
    } * wizard_bench::runs();

    let wide = wide_module();
    let richards = wizard_suites::richards_benchmark(1).module;
    let pb = wizard_suites::polybench_suite(scale);
    let gemm = &pb.iter().find(|b| b.name == "gemm").expect("gemm in suite").module;

    println!("=== instantiation throughput: cold vs warm (shared artifact) ===");
    println!(
        "{:<12} {:>12} {:>12} {:>9} {:>14} {:>16}",
        "workload", "cold/inst", "warm/inst", "speedup", "artifact bytes", "probed overlay"
    );

    let rows = vec![
        measure("wide-60", &wide, iters),
        measure("richards", &richards, iters),
        measure("gemm", gemm, iters),
    ];

    let mut series = Vec::new();
    let mut wide_speedup = 0.0;
    for r in &rows {
        let speedup = r.cold.as_secs_f64() / r.warm.as_secs_f64().max(1e-12);
        if r.name == "wide-60" {
            wide_speedup = speedup;
        }
        println!(
            "{:<12} {:>10.1}us {:>10.1}us {:>8.1}x {:>14} {:>16}",
            r.name,
            r.cold.as_secs_f64() * 1e6,
            r.warm.as_secs_f64() * 1e6,
            speedup,
            r.artifact_bytes,
            r.probed_overlay_bytes
        );
        series.push(Json::object([
            ("workload", Json::str(r.name)),
            ("cold_us", Json::num(r.cold.as_secs_f64() * 1e6)),
            ("warm_us", Json::num(r.warm.as_secs_f64() * 1e6)),
            ("warm_speedup", Json::num(speedup)),
            ("artifact_code_bytes", Json::num(r.artifact_bytes as f64)),
            ("clean_overlay_bytes", Json::num(0.0)),
            ("probed_overlay_bytes", Json::num(r.probed_overlay_bytes as f64)),
        ]));
    }

    println!("\nwarm speedup on the validation-dominated workload (wide-60): {wide_speedup:.1}x");

    // Assert before writing (matching the other emitters): a regression
    // run must not leave a failing row for trajectory tooling to ingest.
    if wizard_bench::smoke() {
        println!("(smoke mode: skipping the >=5x warm-instantiation assertion)");
    } else {
        assert!(
            wide_speedup >= 5.0,
            "warm instantiation must be >=5x cold on wide-60 (got {wide_speedup:.1}x)"
        );
    }

    let mut fields = metadata(
        "instantiate_throughput",
        &["wide-60", "richards", "polybench"],
        &EngineConfig::default(),
    );
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "summary".to_string(),
        Json::object([("wide_warm_speedup", Json::num(wide_speedup))]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_instantiate.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_instantiate.json");
    println!("wrote {path}");
}
