//! Fact-driven probe demotion: what static analysis buys the script
//! compiler. Attaches a set of zoo scripts to a workload twice — once
//! with per-site dataflow facts (the default) and once with
//! `ScriptMonitor::without_facts()` — and compares the probe-shape
//! census: how many sites lowered to intrinsified `Count` probes, how
//! many stayed `Operand`/`Generic`, and how many were dropped outright
//! (`none`). Facts may only change *how* a probe observes, never *what*
//! it counts, so the bench also runs each configuration and asserts the
//! reports are row-identical.
//!
//! Also times the translation validator (`validate_lowering`) over every
//! suite kernel — the cost of the safety net the analysis crate adds to
//! the lowered pipeline. Emits `BENCH_analysis.json` (schema in
//! `EXPERIMENTS.md`).
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS` as everywhere else.

use std::time::Instant;

use wizard_analysis::validate_lowering;
use wizard_bench::json::Json;
use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, ModuleArtifact, Process, Report, Value};
use wizard_script::ScriptMonitor;
use wizard_suites::{all_suites, Benchmark, Scale};

/// Zoo scripts with `tos` predicates of varying static decidability.
const SCRIPTS: &[(&str, &str)] = &[
    // Pure counter: already all-Count, facts change nothing.
    ("hotness", "match * do inc exec[site]\nreport \"summary\" total \"execs\" exec"),
    // `tos` over a non-consuming opcode: Generic without facts; where
    // the stack is provably empty the predicate folds and demotes.
    (
        "cold-get",
        "match local.get when tos == 0 do inc cold[site]\n\
         report \"summary\" total \"cold gets\" cold",
    ),
    // `tos` over every site: the broadest demotion surface.
    ("zero-tos", "match * when tos == 0 do inc z[site]\nreport \"summary\" total \"zeros\" z"),
    // `tos` over branches: consumes the operand, stays Operand-shaped.
    (
        "branch-taken",
        "match branch when tos != 0 do inc taken[site]\n\
         report \"summary\" total \"taken\" taken",
    ),
];

struct Census {
    count: usize,
    operand: usize,
    generic: usize,
    dropped: usize,
    report: Report,
}

fn attach_and_run(b: &Benchmark, src: &str, facts: bool) -> Census {
    let mut p =
        Process::new(b.module.clone(), EngineConfig::jit(), &Linker::new()).expect("instantiates");
    let mut mon = ScriptMonitor::from_source(src).expect("compiles");
    if !facts {
        mon = mon.without_facts();
    }
    let m = p.attach_monitor(mon).expect("attach");
    let (count, operand, generic) = m.borrow().kind_counts();
    let dropped = m.borrow().dropped_sites();
    p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
    let report = m.report();
    Census { count, operand, generic, dropped, report }
}

fn main() {
    let scale = wizard_bench::scale();
    let workload = &all_suites(scale)[0];

    println!("=== analysis demotion: probe-shape census, facts off vs on ===");
    println!("workload: {}/{}", workload.suite, workload.name);
    println!(
        "{:<14} {:>22} {:>22} {:>8}",
        "script", "off (cnt/opr/gen/none)", "on (cnt/opr/gen/none)", "rows"
    );

    let mut series = Vec::new();
    let mut any_demoted = false;
    for (name, src) in SCRIPTS {
        let off = attach_and_run(workload, src, false);
        let on = attach_and_run(workload, src, true);
        assert_eq!(on.report, off.report, "{name}: fact-driven lowering changed the reported rows");
        assert!(
            on.generic <= off.generic,
            "{name}: facts may only demote generic probes, never add them"
        );
        any_demoted |= on.generic < off.generic;
        println!(
            "{:<14} {:>6}/{}/{}/{:<6} {:>8}/{}/{}/{:<6} {:>8}",
            name,
            off.count,
            off.operand,
            off.generic,
            off.dropped,
            on.count,
            on.operand,
            on.generic,
            on.dropped,
            "equal"
        );
        series.push(Json::object([
            ("script", Json::str(*name)),
            ("count_off", Json::num(off.count as f64)),
            ("operand_off", Json::num(off.operand as f64)),
            ("generic_off", Json::num(off.generic as f64)),
            ("none_off", Json::num(off.dropped as f64)),
            ("count_on", Json::num(on.count as f64)),
            ("operand_on", Json::num(on.operand as f64)),
            ("generic_on", Json::num(on.generic as f64)),
            ("none_on", Json::num(on.dropped as f64)),
        ]));
    }
    assert!(
        any_demoted,
        "no script lowered fewer generic probes with facts on — the analysis buys nothing"
    );

    // Translation-validator cost over every suite kernel.
    let kernels = all_suites(Scale::Test);
    let n_kernels = kernels.len();
    let start = Instant::now();
    for b in kernels {
        let artifact = ModuleArtifact::new(b.module).expect("validates");
        artifact.lower_all();
        validate_lowering(&artifact).unwrap_or_else(|e| panic!("{}/{}: {e}", b.suite, b.name));
    }
    let validate_ms = start.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nvalidate_lowering: {n_kernels} kernels in {validate_ms:.1} ms \
         ({:.2} ms/kernel)",
        validate_ms / n_kernels as f64
    );

    let mut fields =
        wizard_bench::metadata("analysis_demotion", &[workload.suite], &EngineConfig::jit());
    fields.push(("workload".to_string(), Json::str(workload.name)));
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "validator".to_string(),
        Json::object([
            ("kernels", Json::num(n_kernels as f64)),
            ("millis", Json::num(validate_ms)),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_analysis.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_analysis.json");
    println!("wrote {path}");
}
