//! Figure 2: the code the JIT generates for different probe kinds —
//! uninstrumented, a generic probe (checkpoint + runtime call), an
//! intrinsified top-of-stack operand probe (direct call), and an
//! intrinsified counter probe (fully inlined increment).

use wizard_engine::store::Linker;
use wizard_engine::{CountProbe, EmptyOperandProbe, EmptyProbe, EngineConfig, Process};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::types::BlockType;
use wizard_wasm::types::ValType::I32;

fn sample() -> (wizard_wasm::Module, u32) {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    f.local_get(0);
    let probe_pc = f.pc();
    f.if_(BlockType::Value(I32));
    f.i32_const(1);
    f.else_();
    f.i32_const(2);
    f.end();
    mb.add_func("sample", f);
    (mb.build().expect("valid"), probe_pc)
}

fn listing(kind: &str, attach: impl FnOnce(&mut Process, u32, u32)) -> String {
    let (m, pc) = sample();
    let mut p = Process::new(m, EngineConfig::jit(), &Linker::new()).expect("instantiates");
    let f = p.module().export_func("sample").unwrap();
    attach(&mut p, f, pc);
    let code = p.compiled_listing(f).expect("compiles");
    format!("--- {kind} ---\n{code}")
}

fn main() {
    println!("=== Figure 2: JIT code for each probe kind (probe on the `if`) ===\n");
    print!("{}", listing("uninstrumented", |_, _, _| {}));
    print!(
        "{}",
        listing("generic probe (checkpoint + runtime call)", |p, f, pc| {
            p.add_local_probe_val(f, pc, EmptyProbe).unwrap();
        })
    );
    print!(
        "{}",
        listing("operand probe, intrinsified (direct top-of-stack call)", |p, f, pc| {
            p.add_local_probe_val(f, pc, EmptyOperandProbe).unwrap();
        })
    );
    print!(
        "{}",
        listing("counter probe, intrinsified (inline increment)", |p, f, pc| {
            p.add_local_probe_val(f, pc, CountProbe::new()).unwrap();
        })
    );
}
