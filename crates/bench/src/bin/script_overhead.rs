//! Script overhead: the cost of *data-driven* instrumentation. Runs the
//! hotness analysis three ways on Richards + PolyBench (JIT tier,
//! intrinsification on) and compares relative execution time against the
//! uninstrumented baseline:
//!
//! * **scripted** — the wizard-script hotness program, compiled onto the
//!   probe engine at attach time (`match * do inc exec[site]`);
//! * **handwritten** — the zoo's `HotnessMonitor` (the paper's Figure-4
//!   configuration);
//! * **rewriter** — static bytecode rewriting (the intrusive baseline).
//!
//! Because the script compiler proves the rule is a pure counter and
//! lowers every site to an intrinsified count probe, scripted and
//! handwritten runs execute the *same machine behaviour*; the bench
//! asserts the classification (all `ProbeKind::Count`), equal fire
//! counts, and that the scripted geomean overhead stays within 2× of the
//! handwritten one. Emits `BENCH_script.json` (schema in
//! `EXPERIMENTS.md`).
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS` as everywhere else.

use std::time::{Duration, Instant};

use wizard_bench::json::Json;
use wizard_bench::{geomean, relative, Measurement};
use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, ProbeKind, Process, Value};
use wizard_monitors::HotnessMonitor;
use wizard_script::ScriptMonitor;
use wizard_suites::Benchmark;

const HOTNESS: &str = "monitor \"hotness\"\n\
                       match * do inc exec[site]\n\
                       report \"top locations\" top 20 exec\n\
                       report \"summary\" total \"total instruction executions\" exec";

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Baseline,
    Scripted,
    Handwritten,
    Rewriter,
}

fn run_once(b: &Benchmark, mode: Mode) -> (Duration, u64) {
    let start = Instant::now();
    match mode {
        Mode::Rewriter => {
            let counted = wizard_rewriter::count_instructions(&b.module).expect("rewrites");
            let mut p = Process::new(counted.module.clone(), EngineConfig::jit(), &Linker::new())
                .expect("instantiates");
            p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
            let t = start.elapsed();
            let fires = counted.total(p.memory().expect("memory"));
            (t, fires)
        }
        _ => {
            let mut p = Process::new(b.module.clone(), EngineConfig::jit(), &Linker::new())
                .expect("instantiates");
            let fires: Box<dyn Fn() -> u64> = match mode {
                Mode::Baseline => Box::new(|| 0),
                Mode::Scripted => {
                    let m = p
                        .attach_monitor(ScriptMonitor::from_source(HOTNESS).expect("compiles"))
                        .expect("attach");
                    {
                        // The whole point: a counter-only script provably
                        // lowers to the intrinsified fast path.
                        let mon = m.borrow();
                        let (_, operand, generic) = mon.kind_counts();
                        assert_eq!(
                            (operand, generic),
                            (0, 0),
                            "{}: scripted hotness must lower to Count probes only",
                            b.name
                        );
                        for l in mon.lowering() {
                            debug_assert!(p
                                .probe_kinds_at(l.loc.func, l.loc.pc)
                                .iter()
                                .all(|k| *k == ProbeKind::Count));
                        }
                    }
                    Box::new(move || m.borrow().counter("exec"))
                }
                Mode::Handwritten => {
                    let m = p.attach_monitor(HotnessMonitor::new()).expect("attach");
                    Box::new(move || m.borrow().total())
                }
                Mode::Rewriter => unreachable!(),
            };
            p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
            let t = start.elapsed();
            (t, fires())
        }
    }
}

fn measure(b: &Benchmark, mode: Mode) -> Measurement {
    let n = wizard_bench::runs();
    let mut total = Duration::ZERO;
    let mut fires = 0;
    for _ in 0..n {
        let (t, f) = run_once(b, mode);
        total += t;
        fires = f;
    }
    Measurement { time: total / n, fires, checksum: 0 }
}

fn main() {
    let scale = wizard_bench::scale();
    let mut suite = vec![wizard_suites::richards_benchmark(match scale {
        wizard_suites::Scale::Test => 50,
        wizard_suites::Scale::Small => 300,
        wizard_suites::Scale::Medium => 1000,
    })];
    suite.extend(wizard_suites::polybench_suite(scale));

    println!("=== script overhead: scripted vs handwritten vs rewriter (hotness, JIT) ===");
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>14}",
        "benchmark", "scripted", "handwritten", "rewriter", "probe fires"
    );

    let mut series = Vec::new();
    let (mut rs, mut rh, mut rw) = (Vec::new(), Vec::new(), Vec::new());
    for b in &suite {
        let base = measure(b, Mode::Baseline);
        let scripted = measure(b, Mode::Scripted);
        let handwritten = measure(b, Mode::Handwritten);
        let rewriter = measure(b, Mode::Rewriter);
        assert_eq!(
            scripted.fires, handwritten.fires,
            "{}: scripted and handwritten hotness must count identically",
            b.name
        );
        let (s, h, w) =
            (relative(&scripted, &base), relative(&handwritten, &base), relative(&rewriter, &base));
        rs.push(s);
        rh.push(h);
        rw.push(w);
        println!("{:<16} {:>11.2}x {:>13.2}x {:>11.2}x {:>14}", b.name, s, h, w, scripted.fires);
        series.push(Json::object([
            ("benchmark", Json::str(b.name)),
            ("scripted", Json::num(s)),
            ("handwritten", Json::num(h)),
            ("rewriter", Json::num(w)),
            ("fires", Json::num(scripted.fires as f64)),
        ]));
    }

    let (gs, gh, gw) = (geomean(&rs), geomean(&rh), geomean(&rw));
    println!("\ngeomean: scripted {gs:.2}x, handwritten {gh:.2}x, rewriter {gw:.2}x");
    let ratio = gs / gh.max(1e-9);
    println!("scripted / handwritten = {ratio:.2}x (acceptance bound: 2.0x)");
    if wizard_bench::smoke() {
        println!("(smoke mode: skipping the <=2x scripted-overhead assertion)");
    } else {
        assert!(
            ratio <= 2.0,
            "scripted hotness geomean overhead ({gs:.2}x) exceeds 2x the handwritten \
             monitor ({gh:.2}x) — the lowering lost the intrinsified fast path"
        );
    }

    let mut fields = wizard_bench::metadata(
        "script_overhead",
        &["richards", "polybench"],
        &wizard_engine::EngineConfig::jit(),
    );
    fields.push(("analysis".to_string(), Json::str("hotness")));
    fields.push(("tier".to_string(), Json::str("jit-intrinsified")));
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "geomean".to_string(),
        Json::object([
            ("scripted", Json::num(gs)),
            ("handwritten", Json::num(gh)),
            ("rewriter", Json::num(gw)),
            ("scripted_over_handwritten", Json::num(ratio)),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_script.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_script.json");
    println!("wrote {path}");
}
