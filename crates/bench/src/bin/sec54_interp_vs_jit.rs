//! §5.4: interpreter vs JIT — relative execution times differ wildly but
//! *absolute* overheads are comparable, because the interpreter's baseline
//! is slower and probes need no state checkpointing there.

use wizard_bench::{baseline, measure, relative, Analysis, System};
use wizard_suites::polybench_suite;

fn main() {
    let suite = polybench_suite(wizard_bench::scale());
    println!("=== §5.4: relative and absolute overhead, interpreter vs JIT ===");
    println!(
        "{:<16} {:>11} {:>11} {:>12} {:>12}",
        "benchmark", "rel(interp)", "rel(JIT)", "abs(interp)", "abs(JIT)"
    );
    let mut abs_i = Vec::new();
    let mut abs_j = Vec::new();
    for b in &suite {
        let base_i = baseline(b, System::Interp);
        let base_j = baseline(b, System::JitIntrinsified);
        let mi = measure(b, System::Interp, Analysis::Branch);
        let mj = measure(b, System::Jit, Analysis::Branch);
        let ai = mi.time.saturating_sub(base_i.time);
        let aj = mj.time.saturating_sub(base_j.time);
        abs_i.push(ai.as_secs_f64());
        abs_j.push(aj.as_secs_f64());
        println!(
            "{:<16} {:>10.2}x {:>10.2}x {:>11.1}ms {:>11.1}ms",
            b.name,
            relative(&mi, &base_i),
            relative(&mj, &base_j),
            ai.as_secs_f64() * 1e3,
            aj.as_secs_f64() * 1e3,
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean absolute overhead (branch monitor): interpreter {:.1}ms vs JIT {:.1}ms",
        mean(&abs_i) * 1e3,
        mean(&abs_j) * 1e3
    );
    println!("(paper: 2.6s vs 2.3s at the medium dataset — comparable magnitudes)");
}
