//! Dispatch speed: the lowered code pipeline vs classic byte-walking
//! dispatch, on richards + PolyBench, interpreter-only and tiered.
//!
//! The lowered pipeline pays the decode tax (LEB128 immediates, side-table
//! `HashMap` branch resolution) once per function instead of once per
//! executed instruction; this benchmark measures what that buys in the
//! interpreter hot loop. The classic dispatcher is the engine's
//! pre-lowering implementation, kept selectable precisely so this
//! comparison stays measurable ([`wizard_engine::Dispatch::Bytecode`]).
//!
//! Emits `BENCH_dispatch.json` (schema in `EXPERIMENTS.md`) with the
//! shared metadata block and per-benchmark times plus geomean speedups.
//! Outside smoke mode the interpreter geomean is asserted ≥ 1.25×, the
//! acceptance bar for the lowering refactor.
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS`, `WIZARD_SMOKE`.

use std::time::{Duration, Instant};

use wizard_bench::json::Json;
use wizard_bench::{geomean, metadata};
use wizard_engine::store::Linker;
use wizard_engine::{Dispatch, EngineConfig, ExecMode, Process, Value};
use wizard_suites::Benchmark;

/// Best-of-N wall time and checksum of an uninstrumented run under
/// `config`.
///
/// Unlike the figure benches (which follow §5.1 and time the entire
/// program), this measures *execution only*: instantiation — module
/// clone, validation, linking — is identical under both dispatchers and
/// would only dilute the dispatch ratio being measured. One warmup
/// invocation per process absorbs lazy lowering/compilation, and the
/// *minimum* over `WIZARD_RUNS` repetitions is reported — the standard
/// microbenchmark estimator for "dispatch cost without scheduler noise".
fn time_config(b: &Benchmark, config: &EngineConfig) -> (Duration, u64) {
    let n = wizard_bench::runs();
    let mut best = Duration::MAX;
    let mut checksum = 0;
    let mut p = Process::new(b.module.clone(), config.clone(), &Linker::new())
        .expect("benchmark instantiates");
    p.invoke_export("run", &[Value::I32(b.n)]).expect("warmup runs");
    for _ in 0..n {
        let start = Instant::now();
        let r = p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
        best = best.min(start.elapsed());
        checksum = r.first().map_or(0, |v| v.to_slot().0);
    }
    (best, checksum)
}

fn main() {
    let scale = wizard_bench::scale();
    let mut suite = vec![wizard_suites::richards_benchmark(match scale {
        wizard_suites::Scale::Test => 50,
        wizard_suites::Scale::Small => 300,
        wizard_suites::Scale::Medium => 1000,
    })];
    suite.extend(wizard_suites::polybench_suite(scale));

    let interp_lowered = EngineConfig::interpreter();
    let interp_bytes = EngineConfig::interpreter_bytecode();
    let tiered_lowered = EngineConfig::tiered();
    let tiered_bytes =
        EngineConfig::builder().mode(ExecMode::Tiered).dispatch(Dispatch::Bytecode).build();

    println!("=== dispatch speed: lowered pipeline vs classic byte dispatch ===");
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "benchmark",
        "interp(byte)",
        "interp(low)",
        "speedup",
        "tiered(byte)",
        "tiered(low)",
        "speedup"
    );

    let mut series = Vec::new();
    let mut interp_speedups = Vec::new();
    let mut tiered_speedups = Vec::new();
    for b in &suite {
        let (ib, cs_ib) = time_config(b, &interp_bytes);
        let (il, cs_il) = time_config(b, &interp_lowered);
        let (tb, cs_tb) = time_config(b, &tiered_bytes);
        let (tl, cs_tl) = time_config(b, &tiered_lowered);
        assert_eq!(cs_il, cs_ib, "{}: lowering changed the interpreter result", b.name);
        assert_eq!(cs_tl, cs_tb, "{}: lowering changed the tiered result", b.name);
        let si = ib.as_secs_f64() / il.as_secs_f64().max(1e-9);
        let st = tb.as_secs_f64() / tl.as_secs_f64().max(1e-9);
        interp_speedups.push(si);
        tiered_speedups.push(st);
        println!(
            "{:<16} {:>10.2}ms {:>10.2}ms {:>8.2}x {:>10.2}ms {:>10.2}ms {:>8.2}x",
            b.name,
            ib.as_secs_f64() * 1e3,
            il.as_secs_f64() * 1e3,
            si,
            tb.as_secs_f64() * 1e3,
            tl.as_secs_f64() * 1e3,
            st
        );
        series.push(Json::object([
            ("benchmark", Json::str(b.name)),
            ("interp_bytecode_ms", Json::num(ib.as_secs_f64() * 1e3)),
            ("interp_lowered_ms", Json::num(il.as_secs_f64() * 1e3)),
            ("interp_speedup", Json::num(si)),
            ("tiered_bytecode_ms", Json::num(tb.as_secs_f64() * 1e3)),
            ("tiered_lowered_ms", Json::num(tl.as_secs_f64() * 1e3)),
            ("tiered_speedup", Json::num(st)),
        ]));
    }

    let gi = geomean(&interp_speedups);
    let gt = geomean(&tiered_speedups);
    println!("\ngeomean interpreter speedup (lowered vs bytecode): {gi:.2}x");
    println!("geomean tiered speedup (lowered vs bytecode):      {gt:.2}x");

    // Assert before writing (matching script_overhead): a regression run
    // must not leave a failing row for trajectory tooling to ingest.
    if wizard_bench::smoke() {
        println!("(smoke mode: skipping the >=1.25x interpreter geomean assertion)");
    } else {
        assert!(
            gi >= 1.25,
            "lowered interpreter dispatch must be >=1.25x over byte dispatch (got {gi:.2}x)"
        );
    }

    let mut fields = metadata("dispatch_speed", &["richards", "polybench"], &interp_lowered);
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "summary".to_string(),
        Json::object([
            ("interp_geomean_speedup", Json::num(gi)),
            ("tiered_geomean_speedup", Json::num(gt)),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_dispatch.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_dispatch.json");
    println!("wrote {path}");
}
