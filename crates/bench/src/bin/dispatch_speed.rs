//! Dispatch speed: classic byte-walking dispatch vs the lowered code
//! pipeline vs the register tier, on richards + PolyBench,
//! interpreter-only and tiered.
//!
//! Three dispatchers, selectable via [`wizard_engine::Dispatch`] and kept
//! comparable on purpose:
//!
//! * `Bytecode` — the engine's pre-lowering implementation: LEB128
//!   immediates and side-table branch resolution paid per executed
//!   instruction.
//! * `Lowered` — pre-decoded fixed-width instructions, decode tax paid
//!   once per function; the operand stack is still pushed and popped per
//!   instruction.
//! * `Register` — the register IR: locals and stack slots are numbered
//!   registers, `local.get`/consts fold into inline operands, and the
//!   stack traffic disappears from the hot loop entirely.
//!
//! Emits `BENCH_dispatch.json` (series schema v2, see `EXPERIMENTS.md`)
//! with the shared metadata block, per-benchmark times for all
//! dispatcher × mode cells, and geomean speedups. Outside smoke mode the
//! lowered interpreter geomean must stay ≥ 1.25× over bytecode and the
//! register interpreter geomean must reach ≥ 2.0× over bytecode while
//! not regressing (≥ 1.0×) against lowered — the acceptance bars for the
//! lowering and register-tier refactors respectively.
//!
//! Environment: `WIZARD_SCALE`, `WIZARD_RUNS`, `WIZARD_SMOKE`.

use std::time::{Duration, Instant};

use wizard_bench::json::Json;
use wizard_bench::{geomean, metadata};
use wizard_engine::store::Linker;
use wizard_engine::{Dispatch, EngineConfig, ExecMode, Process, Value};
use wizard_suites::Benchmark;

/// Best-of-N wall time and checksum of an uninstrumented run under
/// `config`.
///
/// Unlike the figure benches (which follow §5.1 and time the entire
/// program), this measures *execution only*: instantiation — module
/// clone, validation, linking — is identical under all dispatchers and
/// would only dilute the dispatch ratio being measured. One warmup
/// invocation per process absorbs lazy lowering/compilation, and the
/// *minimum* over `WIZARD_RUNS` repetitions is reported — the standard
/// microbenchmark estimator for "dispatch cost without scheduler noise".
fn time_config(b: &Benchmark, config: &EngineConfig) -> (Duration, u64) {
    let n = wizard_bench::runs();
    let mut best = Duration::MAX;
    let mut checksum = 0;
    let mut p = Process::new(b.module.clone(), config.clone(), &Linker::new())
        .expect("benchmark instantiates");
    p.invoke_export("run", &[Value::I32(b.n)]).expect("warmup runs");
    for _ in 0..n {
        let start = Instant::now();
        let r = p.invoke_export("run", &[Value::I32(b.n)]).expect("runs");
        best = best.min(start.elapsed());
        checksum = r.first().map_or(0, |v| v.to_slot().0);
    }
    (best, checksum)
}

/// One mode's dispatcher triple (bytecode / lowered / register).
struct Cells {
    label: &'static str,
    bytecode: EngineConfig,
    lowered: EngineConfig,
    register: EngineConfig,
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ratio(base: Duration, x: Duration) -> f64 {
    base.as_secs_f64() / x.as_secs_f64().max(1e-9)
}

fn main() {
    let scale = wizard_bench::scale();
    let mut suite = vec![wizard_suites::richards_benchmark(match scale {
        wizard_suites::Scale::Test => 50,
        wizard_suites::Scale::Small => 300,
        wizard_suites::Scale::Medium => 1000,
    })];
    suite.extend(wizard_suites::polybench_suite(scale));

    let tiered = |d: Dispatch| EngineConfig::builder().mode(ExecMode::Tiered).dispatch(d).build();
    let modes = [
        Cells {
            label: "interp",
            bytecode: EngineConfig::interpreter_bytecode(),
            lowered: EngineConfig::interpreter(),
            register: EngineConfig::interpreter_register(),
        },
        Cells {
            label: "tiered",
            bytecode: tiered(Dispatch::Bytecode),
            lowered: tiered(Dispatch::Lowered),
            register: tiered(Dispatch::Register),
        },
    ];

    println!("=== dispatch speed: bytecode vs lowered vs register dispatch ===");
    println!(
        "{:<16} {:<7} {:>12} {:>12} {:>12} {:>9} {:>9} {:>11}",
        "benchmark",
        "mode",
        "bytecode",
        "lowered",
        "register",
        "low/byte",
        "reg/byte",
        "reg/lowered"
    );

    let mut series = Vec::new();
    // [mode][dispatcher-pair] speedup series for geomeans.
    let mut speedups: [[Vec<f64>; 3]; 2] = Default::default();
    for b in &suite {
        let mut fields = vec![("benchmark".to_string(), Json::str(b.name))];
        for (mi, m) in modes.iter().enumerate() {
            let (tb, cs_b) = time_config(b, &m.bytecode);
            let (tl, cs_l) = time_config(b, &m.lowered);
            let (tr, cs_r) = time_config(b, &m.register);
            assert_eq!(cs_l, cs_b, "{}/{}: lowering changed the result", b.name, m.label);
            assert_eq!(cs_r, cs_b, "{}/{}: register tier changed the result", b.name, m.label);
            let (sl, sr, srl) = (ratio(tb, tl), ratio(tb, tr), ratio(tl, tr));
            speedups[mi][0].push(sl);
            speedups[mi][1].push(sr);
            speedups[mi][2].push(srl);
            println!(
                "{:<16} {:<7} {:>10.2}ms {:>10.2}ms {:>10.2}ms {:>8.2}x {:>8.2}x {:>10.2}x",
                b.name,
                m.label,
                ms(tb),
                ms(tl),
                ms(tr),
                sl,
                sr,
                srl
            );
            fields.push((
                format!("{}_ms", m.label),
                Json::object([
                    ("bytecode", Json::num(ms(tb))),
                    ("lowered", Json::num(ms(tl))),
                    ("register", Json::num(ms(tr))),
                ]),
            ));
            fields.push((
                format!("{}_speedup", m.label),
                Json::object([
                    ("lowered", Json::num(sl)),
                    ("register", Json::num(sr)),
                    ("register_vs_lowered", Json::num(srl)),
                ]),
            ));
        }
        series.push(Json::Obj(fields));
    }

    let g = |mi: usize, di: usize| geomean(&speedups[mi][di]);
    println!(
        "\ngeomean interpreter speedups vs bytecode: lowered {:.2}x, register {:.2}x",
        g(0, 0),
        g(0, 1)
    );
    println!("geomean interpreter register vs lowered:  {:.2}x", g(0, 2));
    println!(
        "geomean tiered speedups vs bytecode:      lowered {:.2}x, register {:.2}x",
        g(1, 0),
        g(1, 1)
    );

    // Assert before writing (matching script_overhead): a regression run
    // must not leave a failing row for trajectory tooling to ingest.
    if wizard_bench::smoke() {
        println!("(smoke mode: skipping the geomean assertions)");
    } else {
        let (gl, gr, grl) = (g(0, 0), g(0, 1), g(0, 2));
        assert!(
            gl >= 1.25,
            "lowered interpreter dispatch must be >=1.25x over byte dispatch (got {gl:.2}x)"
        );
        assert!(
            gr >= 2.0,
            "register interpreter dispatch must be >=2.0x over byte dispatch (got {gr:.2}x)"
        );
        assert!(grl >= 1.0, "register dispatch must not regress against lowered (got {grl:.2}x)");
    }

    let mut fields = metadata(
        "dispatch_speed",
        &["richards", "polybench"],
        &EngineConfig::interpreter_register(),
    );
    fields.push(("series_schema".to_string(), Json::num(2.0)));
    fields.push(("series".to_string(), Json::array(series)));
    fields.push((
        "summary".to_string(),
        Json::object([
            ("interp_geomean_lowered", Json::num(g(0, 0))),
            ("interp_geomean_register", Json::num(g(0, 1))),
            ("interp_geomean_register_vs_lowered", Json::num(g(0, 2))),
            ("tiered_geomean_lowered", Json::num(g(1, 0))),
            ("tiered_geomean_register", Json::num(g(1, 1))),
            ("tiered_geomean_register_vs_lowered", Json::num(g(1, 2))),
        ]),
    ));
    let doc = Json::Obj(fields);
    let path = "BENCH_dispatch.json";
    std::fs::write(path, format!("{doc}\n")).expect("write BENCH_dispatch.json");
    println!("wrote {path}");
}
