//! `wizard-bench`: the harness that regenerates every table and figure of
//! the paper's evaluation (§5 and §6.4). Binaries under `src/bin/` print
//! the same rows/series the paper plots; this library holds the shared
//! measurement machinery.
//!
//! Methodology (matching §5.1): each measurement times the *entire*
//! program — engine instantiation, monitor attachment, and execution —
//! and reports relative execution time `T_i / T_u` against the
//! uninstrumented configuration on the same tier, averaged over
//! `WIZARD_RUNS` runs (default 2). `WIZARD_SCALE` picks the problem size
//! (`test`, `small`, `medium`).

#![warn(missing_docs)]

pub mod json;

use std::time::{Duration, Instant};

use wizard_baselines::{dbi, wasabi};
use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, ProbeBatch, Process, Value};
use wizard_monitors::{BranchMonitor, HotnessMonitor, ProbeMode};
use wizard_suites::{Benchmark, Scale};

/// Which analysis the measurement runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Analysis {
    /// No instrumentation (the baseline).
    None,
    /// The hotness monitor (count every instruction).
    Hotness,
    /// The branch monitor (profile conditional branches).
    Branch,
    /// The hotness monitor with probes that have empty M-code
    /// (measures pure probe-dispatch overhead, Figure 5).
    HotnessEmpty,
    /// The branch monitor analog with empty operand probes.
    BranchEmpty,
}

/// Which system executes the instrumented program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum System {
    /// Wizard probes in the interpreter.
    Interp,
    /// Wizard probes in the JIT tier with intrinsification.
    JitIntrinsified,
    /// Wizard probes in the JIT tier without intrinsification.
    Jit,
    /// Static bytecode rewriting run on the JIT tier (§5.5).
    Rewriting,
    /// Wasabi-style host-callback instrumentation (§5.6).
    Wasabi,
    /// DynamoRIO-style clean-call instrumentation (§5.7).
    Dbi,
    /// Wizard global probes in the interpreter (Figure 3).
    InterpGlobal,
}

impl System {
    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            System::Interp => "Wizard (Interpreter)",
            System::JitIntrinsified => "Wizard (JIT intrins.)",
            System::Jit => "Wizard (JIT)",
            System::Rewriting => "Bytecode rewriting (JIT)",
            System::Wasabi => "Wasabi-style (host calls)",
            System::Dbi => "DynamoRIO-style (clean calls)",
            System::InterpGlobal => "Wizard (Interp, global probe)",
        }
    }

    /// The engine configuration whose *uninstrumented* time is the
    /// denominator for this system.
    pub fn baseline_config(self) -> EngineConfig {
        match self {
            System::Interp | System::InterpGlobal => EngineConfig::interpreter(),
            _ => EngineConfig::jit(),
        }
    }
}

/// One measurement result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Wall-clock time (mean over runs).
    pub time: Duration,
    /// Probe/event fires observed (annotation in Figures 3/4).
    pub fires: u64,
    /// Program checksum, for cross-system validation.
    pub checksum: u64,
}

/// Number of repetitions per measurement (`WIZARD_RUNS`, default 2,
/// clamped to at least 1).
pub fn runs() -> u32 {
    std::env::var("WIZARD_RUNS").ok().and_then(|s| s.parse().ok()).unwrap_or(2).max(1)
}

/// Problem scale (`WIZARD_SCALE`: `test` / `small` / `medium`).
pub fn scale() -> Scale {
    match std::env::var("WIZARD_SCALE").as_deref() {
        Ok("test") => Scale::Test,
        Ok("medium") => Scale::Medium,
        _ => Scale::Small,
    }
}

/// `true` when running as a CI smoke test (`WIZARD_SMOKE=1`): emitters
/// still exercise their full measurement and JSON paths but skip hard
/// performance assertions, which are meaningless at smoke iteration
/// counts on shared runners.
pub fn smoke() -> bool {
    std::env::var("WIZARD_SMOKE").as_deref() == Ok("1")
}

/// Number of hardware threads on this host (recorded in every artifact so
/// cross-host series stay interpretable).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// An [`EngineConfig`] serialized for the metadata block.
pub fn engine_json(c: &EngineConfig) -> json::Json {
    use json::Json;
    Json::object([
        ("mode", Json::str(format!("{:?}", c.mode))),
        ("dispatch", Json::str(format!("{:?}", c.dispatch))),
        ("tierup_threshold", Json::num(f64::from(c.tierup_threshold))),
        ("intrinsify_count", Json::Bool(c.intrinsify_count)),
        ("intrinsify_operand", Json::Bool(c.intrinsify_operand)),
        ("fuel_slice", c.fuel_slice.map_or(Json::Null, |n| Json::num(n as f64))),
    ])
}

/// The shared metadata block every `BENCH_*.json` artifact starts with
/// (schema v2): bench name, schema version, scale, runs, host parallelism,
/// the primary engine configuration, and the suite names measured. Every
/// emitter prepends this and appends its series-specific fields, so the
/// artifacts stay joinable across benches and hosts.
pub fn metadata(bench: &str, suites: &[&str], engine: &EngineConfig) -> Vec<(String, json::Json)> {
    use json::Json;
    vec![
        ("bench".to_string(), Json::str(bench)),
        ("schema".to_string(), Json::num(2.0)),
        ("scale".to_string(), Json::str(format!("{:?}", scale()).to_lowercase())),
        ("runs".to_string(), Json::num(f64::from(runs()))),
        ("host_parallelism".to_string(), Json::num(host_parallelism() as f64)),
        ("engine".to_string(), engine_json(engine)),
        ("suites".to_string(), Json::array(suites.iter().copied().map(Json::str).collect())),
    ]
}

fn checksum_of(results: &[Value]) -> u64 {
    results.first().map_or(0, |v| v.to_slot().0)
}

/// Times one complete run: instantiate, attach, invoke.
fn timed(mut setup: impl FnMut() -> (Duration, u64, u64)) -> Measurement {
    let n = runs();
    let mut total = Duration::ZERO;
    let mut fires = 0;
    let mut checksum = 0;
    for _ in 0..n {
        let (t, f, c) = setup();
        total += t;
        fires = f;
        checksum = c;
    }
    Measurement { time: total / n, fires, checksum }
}

/// Measures `analysis` on `bench` under `system`.
///
/// # Panics
///
/// Panics if instantiation or execution fails (benchmarks are validated).
pub fn measure(bench: &Benchmark, system: System, analysis: Analysis) -> Measurement {
    match system {
        System::Interp | System::Jit | System::JitIntrinsified | System::InterpGlobal => {
            let config = match system {
                System::Interp | System::InterpGlobal => EngineConfig::interpreter(),
                System::Jit => EngineConfig::jit_no_intrinsics(),
                System::JitIntrinsified => EngineConfig::jit(),
                _ => unreachable!(),
            };
            let mode =
                if system == System::InterpGlobal { ProbeMode::Global } else { ProbeMode::Local };
            timed(|| {
                let start = Instant::now();
                let mut p = Process::new(bench.module.clone(), config.clone(), &Linker::new())
                    .expect("benchmark instantiates");
                let fires_box: Box<dyn Fn() -> u64> = match analysis {
                    Analysis::None => Box::new(|| 0),
                    Analysis::Hotness => {
                        let m = p.attach_monitor(HotnessMonitor::with_mode(mode)).expect("attach");
                        Box::new(move || m.borrow().total())
                    }
                    Analysis::Branch => {
                        let m = p.attach_monitor(BranchMonitor::with_mode(mode)).expect("attach");
                        Box::new(move || m.borrow().total_fires())
                    }
                    Analysis::HotnessEmpty => {
                        attach_empty(&mut p, false);
                        Box::new(|| 0)
                    }
                    Analysis::BranchEmpty => {
                        attach_empty(&mut p, true);
                        Box::new(|| 0)
                    }
                };
                let r = p.invoke_export("run", &[Value::I32(bench.n)]).expect("runs");
                let t = start.elapsed();
                (t, fires_box(), checksum_of(&r))
            })
        }
        System::Rewriting => timed(|| {
            let start = Instant::now();
            let counted = match analysis {
                Analysis::Hotness | Analysis::HotnessEmpty => {
                    wizard_rewriter::count_instructions(&bench.module).expect("rewrites")
                }
                Analysis::Branch | Analysis::BranchEmpty => {
                    wizard_rewriter::count_branches(&bench.module).expect("rewrites")
                }
                Analysis::None => {
                    // Uninstrumented "rewriting" = the original module.
                    let mut p =
                        Process::new(bench.module.clone(), EngineConfig::jit(), &Linker::new())
                            .expect("instantiates");
                    let r = p.invoke_export("run", &[Value::I32(bench.n)]).expect("runs");
                    return (start.elapsed(), 0, checksum_of(&r));
                }
            };
            let mut p = Process::new(counted.module.clone(), EngineConfig::jit(), &Linker::new())
                .expect("instantiates");
            let r = p.invoke_export("run", &[Value::I32(bench.n)]).expect("runs");
            let t = start.elapsed();
            let fires = counted.total(p.memory().expect("memory"));
            (t, fires, checksum_of(&r))
        }),
        System::Wasabi => timed(|| {
            let start = Instant::now();
            let run = match analysis {
                Analysis::Branch | Analysis::BranchEmpty => {
                    wasabi::branch(&bench.module).expect("injects")
                }
                _ => wasabi::hotness(&bench.module).expect("injects"),
            };
            let mut p = Process::new(run.module.clone(), EngineConfig::jit(), &run.linker)
                .expect("instantiates");
            let r = p.invoke_export("run", &[Value::I32(bench.n)]).expect("runs");
            (start.elapsed(), run.analysis.events(), checksum_of(&r))
        }),
        System::Dbi => timed(|| {
            let start = Instant::now();
            let run = match analysis {
                Analysis::Branch | Analysis::BranchEmpty => {
                    dbi::branch(&bench.module).expect("injects")
                }
                _ => dbi::hotness(&bench.module).expect("injects"),
            };
            let mut p = Process::new(run.module.clone(), EngineConfig::jit(), &run.linker)
                .expect("instantiates");
            let r = p.invoke_export("run", &[Value::I32(bench.n)]).expect("runs");
            (start.elapsed(), run.tool.clean_calls(), checksum_of(&r))
        }),
    }
}

fn attach_empty(p: &mut Process, branches_only: bool) {
    use wizard_engine::{EmptyOperandProbe, EmptyProbe};
    use wizard_wasm::opcodes as op;
    let sites: Vec<(u32, u32, u8)> = {
        let module = p.module();
        let n_imp = module.num_imported_funcs();
        let mut v = Vec::new();
        for (i, f) in module.funcs.iter().enumerate() {
            for item in wizard_wasm::instr::InstrIter::new(&f.body.code) {
                let instr = item.expect("validated");
                let is_branch = matches!(instr.op, op::IF | op::BR_IF | op::BR_TABLE);
                if !branches_only || is_branch {
                    v.push((n_imp + i as u32, instr.pc, instr.op));
                }
            }
        }
        v
    };
    // Batched: the whole empty-probe set costs one invalidation pass.
    let mut batch = ProbeBatch::new();
    for (func, pc, opcode) in sites {
        let is_branch = matches!(opcode, op::IF | op::BR_IF | op::BR_TABLE);
        if branches_only && is_branch {
            batch.add_local_val(func, pc, EmptyOperandProbe);
        } else {
            batch.add_local_val(func, pc, EmptyProbe);
        }
    }
    p.apply_batch(batch).expect("attach");
}

/// Uninstrumented baseline time for a system.
pub fn baseline(bench: &Benchmark, system: System) -> Measurement {
    let config = system.baseline_config();
    timed(|| {
        let start = Instant::now();
        let mut p = Process::new(bench.module.clone(), config.clone(), &Linker::new())
            .expect("instantiates");
        let r = p.invoke_export("run", &[Value::I32(bench.n)]).expect("runs");
        (start.elapsed(), 0, checksum_of(&r))
    })
}

/// Relative execution time `instrumented / uninstrumented`.
pub fn relative(instrumented: &Measurement, uninstrumented: &Measurement) -> f64 {
    instrumented.time.as_secs_f64() / uninstrumented.time.as_secs_f64().max(1e-9)
}

/// Geometric mean of a series.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a figure row: name, then `label=value×` columns.
pub fn row(name: &str, cols: &[(&str, f64)]) -> String {
    let mut s = format!("{name:<16}");
    for (label, v) in cols {
        s.push_str(&format!(" {label}={v:>8.2}x"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }

    #[test]
    fn relative_time_is_ratio() {
        let a = Measurement { time: Duration::from_millis(30), fires: 0, checksum: 0 };
        let b = Measurement { time: Duration::from_millis(10), fires: 0, checksum: 0 };
        assert!((relative(&a, &b) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hotness_measurement_checksums_match_baseline() {
        std::env::set_var("WIZARD_RUNS", "1");
        let bench = &wizard_suites::polybench_suite(Scale::Test)[2]; // gesummv
        let base = baseline(bench, System::JitIntrinsified);
        for system in
            [System::Interp, System::Jit, System::JitIntrinsified, System::Rewriting, System::Dbi]
        {
            let m = measure(bench, system, Analysis::Hotness);
            assert_eq!(
                m.checksum,
                base.checksum,
                "{}: instrumentation changed the result",
                system.label()
            );
            assert!(m.fires > 0, "{}: no fires recorded", system.label());
        }
    }
}
