//! `wizard-pool`: a sharded multi-process pool for instrumented Wasm
//! workloads.
//!
//! The engine ([`wizard_engine`]) is deliberately single-threaded — probes,
//! monitors and the FrameAccessor machinery are `Rc`/`RefCell`-based, as in
//! the paper. Serving many instrumented programs concurrently therefore
//! cannot share one process across threads; instead the pool **shards**:
//!
//! * each [`Job`] (module + entry + args + optional monitor) is assigned
//!   round-robin to one of N *shard* worker threads;
//! * every shard owns its processes outright and multiplexes them
//!   cooperatively with **fuel slices**
//!   ([`Process::run_bounded`] / [`Process::resume`]): each turn executes
//!   at most `fuel_slice` bytecode instructions before the next process
//!   runs, so no job monopolizes its worker;
//! * suspension is transparent to instrumentation — a sliced run fires
//!   exactly the probes of an unbounded run — so per-job monitor
//!   [`Report`]s are exact, and the pool folds them into fleet-wide
//!   aggregates with [`Report::merge`] alongside a merged
//!   [`EngineStats`].
//!
//! Monitors are created *on the worker thread* via a [`MonitorFactory`]
//! (the factory is `Send + Sync`; the monitor it builds never crosses a
//! thread), which is what lets an `Rc`-based analysis run per-process in a
//! multi-threaded fleet.
//!
//! Since the shared-artifact refactor the pool also amortizes the *code
//! pipeline*: every run owns an [`ArtifactCache`] keyed by module identity
//! (the module's canonical binary encoding) and shared across all worker
//! threads. The first job running a module validates and builds its
//! [`ModuleArtifact`]; every later job — on *any* shard — instantiates
//! from the shared artifact with
//! [`Process::instantiate`], skipping validation, lowering and baseline
//! JIT compilation entirely, and executing from the very same lowered
//! code until its own monitor installs a probe (which copy-on-writes only
//! the probed functions, invisibly to sibling jobs). Cache traffic is
//! reported fleet-wide through
//! [`EngineStats::artifact_cache_hits`]/[`EngineStats::artifact_cache_misses`].
//!
//! ```
//! use std::sync::Arc;
//! use wizard_engine::{EngineConfig, Value};
//! use wizard_pool::{Job, Pool, PoolConfig};
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! let i = f.local(I32);
//! let acc = f.local(I32);
//! f.for_range(i, 0, |f| {
//!     f.local_get(acc).local_get(i).i32_add().local_set(acc);
//! });
//! f.local_get(acc);
//! mb.add_func("run", f);
//! let module = mb.build()?;
//!
//! let config = PoolConfig {
//!     shards: 2,
//!     engine: EngineConfig::builder().fuel_slice(1000).build(),
//! };
//! let mut pool = Pool::new(config);
//! for k in 0..4 {
//!     pool.submit(Job::new(format!("job-{k}"), module.clone(), "run", vec![Value::I32(100)]));
//! }
//! let outcome = pool.run();
//! assert_eq!(outcome.jobs.len(), 4);
//! assert!(outcome.jobs.iter().all(|j| j.result == Ok(vec![Value::I32(4950)])));
//! assert!(outcome.stats.suspensions > 0); // the fleet really was time-sliced
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod serve;

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use serve::{
    JobHandle, JobStatus, ServeConfig, ServeEngine, ServeOutcome, ServeSummary, Submit, TenantStats,
};

use wizard_engine::store::Linker;
use wizard_engine::{
    EngineConfig, EngineStats, ModuleArtifact, Monitor, Process, Report, RunOutcome, Value,
};
use wizard_wasm::module::Module;
use wizard_wasm::validate::ValidateError;

/// Fuel slice used when [`EngineConfig::fuel_slice`] is unset: large
/// enough to amortize scheduling, small enough to interleave sub-second
/// kernels.
pub const DEFAULT_FUEL_SLICE: u64 = 100_000;

/// Pool configuration.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of worker threads; each runs one single-threaded engine and
    /// owns the processes of the jobs assigned to it.
    pub shards: usize,
    /// Engine configuration used by every process in the pool. Its
    /// [`EngineConfig::fuel_slice`] is the per-turn instruction budget
    /// (falling back to [`DEFAULT_FUEL_SLICE`]).
    pub engine: EngineConfig,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig { shards: 2, engine: EngineConfig::default() }
    }
}

impl PoolConfig {
    /// The effective per-turn fuel budget.
    pub fn fuel_slice(&self) -> u64 {
        self.engine.fuel_slice.unwrap_or(DEFAULT_FUEL_SLICE).max(1)
    }
}

/// Builds a monitor on the worker thread that will own it. The factory
/// crosses threads; the `Rc`-based monitor it creates never does.
pub type MonitorFactory = Arc<dyn Fn() -> Rc<RefCell<dyn Monitor>> + Send + Sync>;

/// Builds a [`Linker`] on the worker thread that instantiates the job.
/// Like [`MonitorFactory`], the factory crosses threads but the
/// `Rc`-based linker it creates never does — this is how jobs whose
/// modules import host functions (e.g. the ingestion corpus under
/// [`wizard_engine::Shims`]) run in a multi-threaded fleet.
pub type LinkerFactory = Arc<dyn Fn() -> Linker + Send + Sync>;

/// Scheduling priority of a [`Job`] in the serving engine
/// ([`ServeEngine`]). Lower values are more urgent; the round-robin
/// [`Pool`] ignores priorities.
///
/// Priorities are *strict* among runnable work — a worker never picks a
/// `Low` task while a `High` task is queued — but starvation-freedom for
/// low-priority tenants comes from per-tenant fuel budgets: saturating
/// high-priority tenants run out of deficit and are throttled, letting
/// lower-priority work through (see the [`serve`] module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive; always scheduled first.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Batch/background work; runs when nothing more urgent is queued.
    Low,
}

impl Priority {
    /// All priorities, most urgent first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Dense index (0 = most urgent), for per-priority queue arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// A thread-safe cache of built [`ModuleArtifact`]s keyed by **module
/// identity** — the module's canonical binary encoding, so byte-identical
/// modules submitted as separate [`Job`]s (fleets clone their kernels per
/// job) resolve to one shared artifact regardless of which shard asks
/// first.
///
/// One lives inside every [`Pool::run`]; hold your own in an `Arc` and use
/// [`Pool::run_with_cache`] to keep artifacts warm *across* runs.
#[derive(Default)]
pub struct ArtifactCache {
    map: Mutex<HashMap<Vec<u8>, Arc<ModuleArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// An empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// The shared artifact for `module`, building (and validating) it on
    /// first sight of this module identity.
    ///
    /// The lock is held only for map lookups/inserts, never across a
    /// build: a shard validating a large new module does not stall other
    /// shards' cache hits on unrelated modules. Two shards racing on the
    /// *same* new module may both build it; the first insert wins, the
    /// loser adopts the winner's artifact (so pointer-sharing always
    /// holds) and the duplicate build is discarded — a bounded, transient
    /// cost taken in exchange for an uncontended hit path.
    ///
    /// Each lookup pays one canonical encoding of the module to compute
    /// its identity key — O(module size), the price of content-keyed
    /// identity without trusting pointer or name identity; it is small
    /// against the validation/lowering/compilation the hit skips.
    ///
    /// # Errors
    ///
    /// Returns the [`ValidateError`] if the module is invalid; failures
    /// are not cached (each submission of an invalid module re-reports).
    pub fn artifact_for(&self, module: &Module) -> Result<Arc<ModuleArtifact>, ValidateError> {
        self.lookup(module).map(|(art, _)| art)
    }

    /// As [`ArtifactCache::artifact_for`], additionally reporting whether
    /// the lookup was served from cache (`true`) or built the artifact
    /// (`false`) — so callers sharing one cache across concurrent runs can
    /// attribute traffic to the run that caused it instead of diffing the
    /// global counters.
    ///
    /// # Errors
    ///
    /// As [`ArtifactCache::artifact_for`].
    pub fn lookup(&self, module: &Module) -> Result<(Arc<ModuleArtifact>, bool), ValidateError> {
        let key = wizard_wasm::encode::encode(module);
        if let Some(art) = self.map.lock().expect("artifact cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(art), true));
        }
        let art = Arc::new(ModuleArtifact::new(module.clone())?);
        match self.map.lock().expect("artifact cache poisoned").entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                // Lost the build race: adopt the canonical artifact.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok((Arc::clone(e.get()), true))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                v.insert(Arc::clone(&art));
                Ok((art, false))
            }
        }
    }

    /// Number of distinct module identities cached.
    pub fn len(&self) -> usize {
        self.map.lock().expect("artifact cache poisoned").len()
    }

    /// `true` if no artifact has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from an already-built artifact.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that built (validated) the artifact.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The cache's traffic as an [`EngineStats`] contribution (only the
    /// `artifact_cache_*` counters are set), ready to merge into a fleet
    /// aggregate.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            artifact_cache_hits: self.hits(),
            artifact_cache_misses: self.misses(),
            ..EngineStats::default()
        }
    }
}

impl core::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("modules", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

/// One unit of work: a module to instantiate, an exported entry point to
/// call, and (optionally) a monitor to attach for the job's lifetime.
#[derive(Clone)]
pub struct Job {
    /// Display name (job names key nothing; duplicates are fine).
    pub name: String,
    /// The module to instantiate (one process per job).
    pub module: Module,
    /// Exported function to invoke.
    pub entry: String,
    /// Arguments for the entry function.
    pub args: Vec<Value>,
    /// Monitor factory; the monitor is attached before the first slice and
    /// detached (restoring the zero-overhead baseline) before reporting.
    pub monitor: Option<MonitorFactory>,
    /// Linker factory; built on the worker thread at instantiation. Jobs
    /// without one link against an empty [`Linker`].
    pub linker: Option<LinkerFactory>,
    /// Tenant this job bills its fuel to (serving engine only; the
    /// round-robin [`Pool`] ignores it).
    pub tenant: String,
    /// Scheduling class (serving engine only).
    pub priority: Priority,
    /// Relative deadline, measured from admission: a job still running
    /// (or still queued) this long after being accepted is cancelled with
    /// [`JobStatus::DeadlineExceeded`]. Serving engine only.
    pub deadline: Option<Duration>,
}

impl Job {
    /// Creates a job with no monitor.
    pub fn new(
        name: impl Into<String>,
        module: Module,
        entry: impl Into<String>,
        args: Vec<Value>,
    ) -> Job {
        Job {
            name: name.into(),
            module,
            entry: entry.into(),
            args,
            monitor: None,
            linker: None,
            tenant: "default".into(),
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// Bills the job's fuel to `tenant` (defaults to `"default"`).
    pub fn for_tenant(mut self, tenant: impl Into<String>) -> Job {
        self.tenant = tenant.into();
        self
    }

    /// Sets the scheduling class (defaults to [`Priority::Normal`]).
    pub fn at_priority(mut self, priority: Priority) -> Job {
        self.priority = priority;
        self
    }

    /// Sets a relative deadline from admission; see [`Job::deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Job {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a linker factory: `make` runs on the worker thread once,
    /// when the job's process is instantiated — e.g.
    /// `move || Shims::standard().linker_for(&module).unwrap()` for
    /// corpus modules that import host functions.
    pub fn with_linker(mut self, make: impl Fn() -> Linker + Send + Sync + 'static) -> Job {
        self.linker = Some(Arc::new(make));
        self
    }

    /// Attaches a monitor factory: `make` runs on the worker thread once,
    /// when the job's process is instantiated.
    pub fn with_monitor<M: Monitor + 'static>(
        mut self,
        make: impl Fn() -> M + Send + Sync + 'static,
    ) -> Job {
        self.monitor =
            Some(Arc::new(move || Rc::new(RefCell::new(make())) as Rc<RefCell<dyn Monitor>>));
        self
    }

    /// Attaches an existing (possibly shared) [`MonitorFactory`]. This is
    /// how *data-driven* instrumentation reaches a fleet: e.g.
    /// `wizard_script::monitor_factory` compiles a script source once and
    /// the resulting factory builds a fresh script monitor per job, on
    /// that job's worker thread.
    pub fn with_monitor_factory(mut self, factory: MonitorFactory) -> Job {
        self.monitor = Some(factory);
        self
    }
}

impl core::fmt::Debug for Job {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Job")
            .field("name", &self.name)
            .field("entry", &self.entry)
            .field("monitored", &self.monitor.is_some())
            .field("tenant", &self.tenant)
            .field("priority", &self.priority)
            .finish()
    }
}

/// The result of one job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job's name.
    pub name: String,
    /// Which shard ran it.
    pub shard: usize,
    /// The entry function's results, or the instantiation/trap error.
    pub result: Result<Vec<Value>, String>,
    /// The monitor's final report (after detach), if one was attached.
    pub report: Option<Report>,
    /// The process's engine counters at job completion.
    pub stats: EngineStats,
    /// Fuel slices the job consumed (≥ 1 for a job that ran).
    pub slices: u64,
}

/// The aggregated result of a pool run.
#[derive(Debug, Clone)]
pub struct PoolOutcome {
    /// Per-job outcomes, in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Fleet-wide engine counters ([`EngineStats::merge`] over all jobs).
    pub stats: EngineStats,
    /// Monitor reports folded by title with [`Report::merge`]: all jobs
    /// running the same analysis contribute to one aggregate report.
    ///
    /// Merging is label-keyed, so scalar totals (e.g. a summary section's
    /// counts) are always meaningful sums; per-*location* rows only
    /// aggregate meaningfully when the jobs run the same program.
    pub merged_reports: Vec<Report>,
}

impl PoolOutcome {
    /// The merged report with this title, if any job produced one.
    pub fn merged_report(&self, title: &str) -> Option<&Report> {
        self.merged_reports.iter().find(|r| r.title == title)
    }

    /// `true` if every job completed without a link error or trap.
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(|j| j.result.is_ok())
    }
}

/// A sharded multi-process pool; see the crate docs.
pub struct Pool {
    config: PoolConfig,
    jobs: Vec<Job>,
}

impl Pool {
    /// Creates an empty pool.
    pub fn new(config: PoolConfig) -> Pool {
        Pool { config, jobs: Vec::new() }
    }

    /// Queues a job.
    pub fn submit(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Runs every queued job to completion and aggregates the fleet's
    /// statistics and monitor reports.
    ///
    /// Jobs are assigned round-robin to `shards` worker threads; within a
    /// worker, live processes take turns of `fuel_slice` instructions
    /// each. The call blocks until the whole fleet has finished.
    ///
    /// Per-job failures — link errors, monitor attach errors, traps — are
    /// reported in that job's [`JobOutcome::result`] and never affect the
    /// rest of the fleet.
    ///
    /// Caveat: instantiation (including a module's *start function*) runs
    /// unmetered, before slicing begins. Fuel fairness applies from the
    /// first `run_export_bounded` turn onward; a hostile start function
    /// can stall its shard during setup.
    pub fn run(self) -> PoolOutcome {
        self.run_with_cache(&Arc::new(ArtifactCache::new()))
    }

    /// As [`Pool::run`], but instantiating through a caller-owned
    /// [`ArtifactCache`] — artifacts built (or found) in this run stay in
    /// the cache, so a long-lived server reuses them across successive
    /// fleets instead of re-validating its kernels every run.
    pub fn run_with_cache(self, cache: &Arc<ArtifactCache>) -> PoolOutcome {
        let shards = self.config.shards.max(1);
        let fuel_slice = self.config.fuel_slice();

        // Partition jobs round-robin, remembering submission order.
        let mut partitions: Vec<Vec<(usize, Job)>> = (0..shards).map(|_| Vec::new()).collect();
        for (idx, job) in self.jobs.into_iter().enumerate() {
            partitions[idx % shards].push((idx, job));
        }

        let mut outcomes: Vec<(usize, JobOutcome)> = Vec::new();
        let mut cache_stats = EngineStats::default();
        if shards == 1 {
            // Single shard: run inline, no thread overhead.
            let shard_out = run_shard(
                0,
                partitions.pop().expect("one partition"),
                self.config.engine,
                fuel_slice,
                cache,
            );
            cache_stats.merge(&shard_out.cache_stats);
            outcomes = shard_out.jobs;
        } else {
            let engine = self.config.engine;
            let handles: Vec<_> = partitions
                .into_iter()
                .enumerate()
                .map(|(shard, part)| {
                    let engine = engine.clone();
                    let cache = Arc::clone(cache);
                    std::thread::spawn(move || run_shard(shard, part, engine, fuel_slice, &cache))
                })
                .collect();
            for h in handles {
                let shard_out = h.join().expect("shard worker panicked");
                cache_stats.merge(&shard_out.cache_stats);
                outcomes.extend(shard_out.jobs);
            }
        }
        outcomes.sort_by_key(|(idx, _)| *idx);
        let jobs: Vec<JobOutcome> = outcomes.into_iter().map(|(_, o)| o).collect();

        let mut stats = EngineStats::default();
        let mut merged_reports: Vec<Report> = Vec::new();
        for j in &jobs {
            stats.merge(&j.stats);
            if let Some(r) = &j.report {
                match merged_reports.iter_mut().find(|m| m.title == r.title) {
                    Some(m) => m.merge(r),
                    None => merged_reports.push(r.clone()),
                }
            }
        }
        // The cache traffic *this run caused* joins the fleet counters —
        // tallied per shard from lookup results, so concurrent runs
        // sharing one cache never cross-attribute each other's traffic.
        // (Processes never touch the artifact_cache_* fields themselves.)
        stats.merge(&cache_stats);
        PoolOutcome { jobs, stats, merged_reports }
    }
}

/// One live process being time-sliced by a shard worker.
struct Task {
    idx: usize,
    name: String,
    entry: String,
    args: Vec<Value>,
    process: Process,
    monitor: Option<(wizard_engine::MonitorHandle, Rc<RefCell<dyn Monitor>>)>,
    started: bool,
    slices: u64,
}

/// What one shard hands back: its job outcomes plus the artifact-cache
/// traffic *its* lookups caused (only the `artifact_cache_*` counters of
/// `cache_stats` are set).
struct ShardOutcome {
    jobs: Vec<(usize, JobOutcome)>,
    cache_stats: EngineStats,
}

/// The shard scheduler: instantiate every assigned job (through the
/// fleet-shared artifact cache, so shards warm each other), then
/// round-robin fuel slices over the live set until all are done.
fn run_shard(
    shard: usize,
    jobs: Vec<(usize, Job)>,
    engine: EngineConfig,
    fuel_slice: u64,
    cache: &ArtifactCache,
) -> ShardOutcome {
    let mut done: Vec<(usize, JobOutcome)> = Vec::new();
    let mut live: VecDeque<Task> = VecDeque::new();
    let mut cache_stats = EngineStats::default();

    for (idx, job) in jobs {
        let failed = |name: String, error: String| {
            (
                idx,
                JobOutcome {
                    name,
                    shard,
                    result: Err(error),
                    report: None,
                    stats: EngineStats::default(),
                    slices: 0,
                },
            )
        };
        let instantiated = cache
            .lookup(&job.module)
            .map_err(wizard_engine::LinkError::from)
            .and_then(|(art, hit)| {
                if hit {
                    cache_stats.artifact_cache_hits += 1;
                } else {
                    cache_stats.artifact_cache_misses += 1;
                }
                // The linker is built on this worker thread; its Rc-based
                // host functions never cross threads.
                let linker = job.linker.as_ref().map_or_else(Linker::new, |make| make());
                Process::instantiate(art, engine.clone(), &linker)
            });
        match instantiated {
            Ok(mut process) => {
                let monitor = match &job.monitor {
                    Some(make) => {
                        let m = make();
                        match process.attach_monitor_dyn(Rc::clone(&m)) {
                            Ok(handle) => Some((handle, m)),
                            // A bad monitor fails its own job, not the fleet.
                            Err(e) => {
                                done.push(failed(job.name, format!("monitor attach error: {e}")));
                                continue;
                            }
                        }
                    }
                    None => None,
                };
                live.push_back(Task {
                    idx,
                    name: job.name,
                    entry: job.entry,
                    args: job.args,
                    process,
                    monitor,
                    started: false,
                    slices: 0,
                });
            }
            Err(e) => done.push(failed(job.name, format!("link error: {e}"))),
        }
    }

    while let Some(mut t) = live.pop_front() {
        let turn = if t.started {
            t.process.resume(fuel_slice)
        } else {
            t.started = true;
            t.process.run_export_bounded(&t.entry, &t.args, fuel_slice)
        };
        t.slices += 1;
        match turn {
            Ok(RunOutcome::OutOfFuel) => live.push_back(t),
            Ok(RunOutcome::Done(values)) => done.push((t.idx, finish(shard, t, Ok(values)))),
            Err(trap) => done.push((t.idx, finish(shard, t, Err(trap.to_string())))),
        }
    }
    ShardOutcome { jobs: done, cache_stats }
}

/// Finalizes a task: detach its monitor (restoring the zero-overhead
/// baseline and letting `on_detach` drain shadow state), then snapshot the
/// report and stats.
fn finish(shard: usize, mut t: Task, result: Result<Vec<Value>, String>) -> JobOutcome {
    let report = t.monitor.take().map(|(handle, monitor)| {
        t.process.detach_monitor(handle).expect("attached monitor detaches");
        let r = monitor.borrow().report();
        r
    });
    JobOutcome { name: t.name, shard, result, report, stats: t.process.stats(), slices: t.slices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_monitors::HotnessMonitor;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn sum_module() -> Module {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("run", f);
        mb.build().unwrap()
    }

    fn fleet(pool: &mut Pool, n: usize, arg: i32, monitored: bool) {
        for k in 0..n {
            let mut job = Job::new(format!("sum-{k}"), sum_module(), "run", vec![Value::I32(arg)]);
            if monitored {
                job = job.with_monitor(HotnessMonitor::new);
            }
            pool.submit(job);
        }
    }

    #[test]
    fn fleet_results_are_correct_across_shard_counts() {
        for shards in [1usize, 2, 4] {
            let config =
                PoolConfig { shards, engine: EngineConfig::builder().fuel_slice(500).build() };
            let mut pool = Pool::new(config);
            fleet(&mut pool, 8, 100, false);
            let outcome = pool.run();
            assert_eq!(outcome.jobs.len(), 8);
            assert!(outcome.all_ok());
            for j in &outcome.jobs {
                assert_eq!(j.result, Ok(vec![Value::I32(4950)]), "{} wrong", j.name);
                assert!(j.slices >= 2, "{} was never preempted", j.name);
            }
            assert!(outcome.stats.suspensions > 0);
            assert!(outcome.stats.fuel_consumed > 0);
            // The artifact cache resolves all 8 byte-identical modules to
            // one shared artifact: one build, 7 hits — regardless of how
            // the jobs landed on shards — and the single shared function
            // is lowered exactly once for the whole fleet.
            assert_eq!(outcome.stats.artifact_cache_misses, 1);
            assert_eq!(outcome.stats.artifact_cache_hits, 7);
            assert_eq!(outcome.stats.functions_lowered, 1);
            assert_eq!(outcome.stats.relower_passes, 0);
            // Nobody probed anything: zero copy-on-write copies were made.
            assert_eq!(outcome.stats.overlay_copies, 0);
            // Jobs come back in submission order regardless of sharding.
            let names: Vec<&str> = outcome.jobs.iter().map(|j| j.name.as_str()).collect();
            assert_eq!(names, (0..8).map(|k| format!("sum-{k}")).collect::<Vec<_>>());
        }
    }

    #[test]
    fn monitor_reports_merge_across_the_fleet() {
        let config =
            PoolConfig { shards: 2, engine: EngineConfig::builder().fuel_slice(300).build() };
        let mut pool = Pool::new(config);
        fleet(&mut pool, 6, 50, true);
        let outcome = pool.run();
        assert!(outcome.all_ok());

        // Every job carries its own exact report...
        let per_job: Vec<u64> = outcome
            .jobs
            .iter()
            .map(|j| {
                j.report
                    .as_ref()
                    .and_then(|r| r.get("summary"))
                    .and_then(|s| s.count_of("total instruction executions"))
                    .expect("hotness report")
            })
            .collect();
        assert!(per_job.iter().all(|&n| n > 0));
        // ...identical across jobs (same program, same slicing-transparent
        // instrumentation)...
        assert!(per_job.windows(2).all(|w| w[0] == w[1]));

        // ...and the pool merges them into one fleet-wide report.
        let merged = outcome.merged_report("hotness").expect("merged hotness report");
        assert_eq!(
            merged.get("summary").unwrap().count_of("total instruction executions"),
            Some(per_job.iter().sum()),
        );
        assert_eq!(outcome.merged_reports.len(), 1, "one analysis → one merged report");
    }

    #[test]
    fn monitored_fleets_pay_copy_on_write_only_for_what_they_probe() {
        let config =
            PoolConfig { shards: 2, engine: EngineConfig::builder().fuel_slice(300).build() };
        let mut pool = Pool::new(config);
        // 3 monitored + 3 unmonitored jobs of the same module.
        fleet(&mut pool, 3, 50, true);
        fleet(&mut pool, 3, 50, false);
        let outcome = pool.run();
        assert!(outcome.all_ok());
        // One shared artifact for all six jobs...
        assert_eq!(outcome.stats.artifact_cache_misses, 1);
        assert_eq!(outcome.stats.artifact_cache_hits, 5);
        // ...each monitored job copy-on-wrote the (single) function it
        // probed; unmonitored jobs copied nothing. Detach at job end
        // rejoined the artifact, so the copies were transient.
        assert_eq!(outcome.stats.overlay_copies, 3);
        for j in &outcome.jobs {
            let monitored = j.report.is_some();
            assert_eq!(j.stats.overlay_copies, u64::from(monitored), "{}", j.name);
        }
    }

    #[test]
    fn caller_owned_cache_stays_warm_across_runs() {
        let cache = Arc::new(ArtifactCache::new());
        for run in 0..2 {
            let mut pool = Pool::new(PoolConfig::default());
            fleet(&mut pool, 4, 20, false);
            let outcome = pool.run_with_cache(&cache);
            assert!(outcome.all_ok());
            if run == 0 {
                assert_eq!(outcome.stats.artifact_cache_misses, 1);
                assert_eq!(outcome.stats.artifact_cache_hits, 3);
            } else {
                // Second fleet: the artifact survived the first run.
                assert_eq!(outcome.stats.artifact_cache_misses, 0);
                assert_eq!(outcome.stats.artifact_cache_hits, 4);
            }
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
    }

    #[test]
    fn link_errors_are_reported_not_fatal() {
        let mut bad = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[]);
        f.nop();
        bad.add_func("run", f);
        let mut bad = bad.build().unwrap();
        // Corrupt: import a function nobody links.
        bad.imports.push(wizard_wasm::module::Import {
            module: "missing".into(),
            name: "f".into(),
            desc: wizard_wasm::module::ImportDesc::Func(0),
        });

        let mut pool = Pool::new(PoolConfig::default());
        pool.submit(Job::new("bad", bad, "run", vec![]));
        pool.submit(Job::new("good", sum_module(), "run", vec![Value::I32(5)]));
        let outcome = pool.run();
        assert_eq!(outcome.jobs.len(), 2);
        assert!(outcome.jobs[0].result.as_ref().unwrap_err().contains("link error"));
        assert_eq!(outcome.jobs[1].result, Ok(vec![Value::I32(10)]));
    }

    #[test]
    fn monitor_attach_errors_fail_only_their_job() {
        use wizard_engine::{InstrumentationCtx, ProbeError, Report};

        /// A monitor whose attach always fails (probes a bogus location).
        struct Broken;
        impl wizard_engine::Monitor for Broken {
            fn name(&self) -> &'static str {
                "broken"
            }
            fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
                let func = ctx.module().num_funcs(); // out of range
                ctx.add_local_probe_val(func, 0, wizard_engine::EmptyProbe)?;
                Ok(())
            }
            fn report(&self) -> Report {
                Report::new("broken")
            }
        }

        let mut pool = Pool::new(PoolConfig::default());
        pool.submit(
            Job::new("doomed", sum_module(), "run", vec![Value::I32(5)]).with_monitor(|| Broken),
        );
        pool.submit(Job::new("fine", sum_module(), "run", vec![Value::I32(5)]));
        let outcome = pool.run();
        assert_eq!(outcome.jobs.len(), 2);
        assert!(outcome.jobs[0].result.as_ref().unwrap_err().contains("monitor attach error"));
        assert_eq!(outcome.jobs[1].result, Ok(vec![Value::I32(10)]));
    }

    #[test]
    fn traps_surface_per_job() {
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[], &[I32]);
        f.i32_const(1).i32_const(0).i32_div_s();
        mb.add_func("run", f);
        let m = mb.build().unwrap();

        let mut pool = Pool::new(PoolConfig::default());
        pool.submit(Job::new("trapper", m, "run", vec![]));
        pool.submit(Job::new("fine", sum_module(), "run", vec![Value::I32(4)]));
        let outcome = pool.run();
        assert!(outcome.jobs[0].result.as_ref().unwrap_err().contains("divide by zero"));
        assert_eq!(outcome.jobs[1].result, Ok(vec![Value::I32(6)]));
        assert!(!outcome.all_ok());
    }
}
