//! The work-stealing multi-tenant serving engine.
//!
//! [`Pool`](crate::Pool) batch-runs a fixed fleet with static round-robin
//! sharding; this module is the *server* shape of the same machinery: a
//! long-lived [`ServeEngine`] with worker threads, a bounded admission
//! queue, and online scheduling. It exists to serve heavy multi-tenant
//! instrumentation traffic with bounded tail latency:
//!
//! * **Work stealing.** Each worker owns per-priority local deques. A
//!   worker pops its own newest task (LIFO — the task whose memory is
//!   hottest), takes from the global admission queue (FIFO), and only
//!   then steals the *oldest* task from a randomly-chosen victim. A long
//!   richards job therefore cannot head-of-line-block anything: its
//!   worker's other tasks are stolen by idle peers, and the long job
//!   itself is preempted at every fuel-slice boundary.
//! * **Cross-worker migration.** A task parks on
//!   [`RunOutcome::OutOfFuel`] with its suspended
//!   [`exec::ExecState`](wizard_engine::exec) inside the process, and is
//!   requeued as a [`Handoff`] — the explicitly-unsafe, documented gate
//!   in `wizard-engine` for moving a *confined* `Rc`-based object graph
//!   between threads. Whichever worker next pops (or steals) the task
//!   resumes it; monitors, probes and reports ride along unchanged, so
//!   instrumentation stays exact under migration.
//! * **Bounded admission with backpressure.** The queue holds at most
//!   `queue_capacity` not-yet-started jobs. [`ServeEngine::try_submit`]
//!   returns [`Submit::Rejected`] when full;
//!   [`ServeEngine::submit_blocking`] / [`ServeEngine::submit_timeout`]
//!   wait for space. Admission also *validates*: the job's module goes
//!   through the shared [`ArtifactCache`] at submit time, so invalid
//!   modules are rejected synchronously ([`Submit::Invalid`]) and warm
//!   tenants skip validation entirely.
//! * **Tenant fairness (deficit round robin).** Every job bills its fuel
//!   to a tenant. A tenant with a finite `quantum` may burn at most that
//!   much fuel per *round* (`round_fuel` units of fleet-wide execution);
//!   when its deficit runs out, its runnable tasks are parked in a
//!   throttled list ([`EngineStats::budget_throttles`]) until the next
//!   round refills deficits (capped at one quantum — DRR). Rounds also
//!   advance when workers would otherwise idle, so throttled work never
//!   deadlocks. Priorities are strict among *runnable* tasks; budgets
//!   are what keep a saturating high-priority tenant from starving
//!   everyone else.
//! * **Deadlines & cancellation.** [`JobHandle::cancel`] and per-job
//!   deadlines take effect at the next slice boundary (or immediately if
//!   the job is still queued/throttled). Cancelled jobs still detach
//!   their monitor — restoring the zero-overhead baseline — and report
//!   the fuel they really burned.
//! * **Observability.** Scheduler counters ([`EngineStats::steals`],
//!   [`EngineStats::queue_depth_max`], [`EngineStats::slices_executed`],
//!   [`EngineStats::budget_throttles`]) merge into the fleet-wide
//!   [`EngineStats`]; per-tenant fuel is reported via
//!   [`ServeEngine::tenant_stats`].
//!
//! ```
//! use wizard_engine::{EngineConfig, Value};
//! use wizard_pool::{Job, Priority, ServeConfig, ServeEngine};
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! let i = f.local(I32);
//! let acc = f.local(I32);
//! f.for_range(i, 0, |f| {
//!     f.local_get(acc).local_get(i).i32_add().local_set(acc);
//! });
//! f.local_get(acc);
//! mb.add_func("run", f);
//! let module = mb.build()?;
//!
//! let engine = ServeEngine::new(ServeConfig {
//!     workers: 2,
//!     engine: EngineConfig::builder().fuel_slice(500).build(),
//!     ..ServeConfig::default()
//! });
//! let mut handles = Vec::new();
//! for k in 0..8 {
//!     let job = Job::new(format!("job-{k}"), module.clone(), "run", vec![Value::I32(100)])
//!         .for_tenant("demo")
//!         .at_priority(if k % 2 == 0 { Priority::High } else { Priority::Low });
//!     handles.push(engine.try_submit(job).handle().expect("queue has space"));
//! }
//! for h in &handles {
//!     assert_eq!(h.wait().status.values(), Some(&[Value::I32(4950)][..]));
//! }
//! let summary = engine.shutdown();
//! assert_eq!(summary.completed, 8);
//! assert!(summary.stats.slices_executed >= 8);
//! # Ok(())
//! # }
//! ```

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use wizard_engine::store::Linker;
use wizard_engine::{
    EngineConfig, EngineStats, Handoff, ModuleArtifact, Monitor, MonitorHandle, Process, Report,
    RunOutcome, Value,
};

use crate::{ArtifactCache, Job, Priority, DEFAULT_FUEL_SLICE};

/// Configuration of a [`ServeEngine`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads. `0` auto-sizes to the host's
    /// [`std::thread::available_parallelism`] — on a 1-core host that is
    /// a *single* worker, which degrades gracefully to cooperative
    /// fuel-slicing (no cross-thread scheduling overhead to pay for
    /// parallelism the host cannot deliver).
    pub workers: usize,
    /// Engine configuration for every process; its
    /// [`EngineConfig::fuel_slice`] is the per-turn budget (default
    /// [`DEFAULT_FUEL_SLICE`]).
    pub engine: EngineConfig,
    /// Admission-queue capacity: at most this many accepted-but-unstarted
    /// jobs. Submissions beyond it are [`Submit::Rejected`] (or wait, for
    /// the blocking variants).
    pub queue_capacity: usize,
    /// Consecutive slices a worker runs one task while *equal*-priority
    /// work waits, before rotating. Higher = better locality, coarser
    /// round-robin interleave. Strictly-higher-priority work preempts at
    /// the very next slice boundary regardless.
    pub stride: u64,
    /// Length of a tenant-fairness round in fleet-wide fuel units: each
    /// round, a tenant's deficit recovers by one `quantum`.
    pub round_fuel: u64,
    /// Fuel budget per round for tenants without an explicit quantum;
    /// `None` = unlimited.
    pub default_quantum: Option<u64>,
    /// Per-tenant budget overrides; see [`ServeConfig::tenant_budget`].
    pub quanta: Vec<(String, u64)>,
    /// Spawn workers parked: nothing is scheduled until
    /// [`ServeEngine::start`]. Lets tests fill the admission queue
    /// deterministically.
    pub start_paused: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            engine: EngineConfig::default(),
            queue_capacity: 1024,
            stride: 8,
            round_fuel: 1_000_000,
            default_quantum: None,
            quanta: Vec::new(),
            start_paused: false,
        }
    }
}

impl ServeConfig {
    /// Caps `tenant` at `quantum` fuel per [`ServeConfig::round_fuel`] of
    /// fleet execution.
    pub fn tenant_budget(mut self, tenant: impl Into<String>, quantum: u64) -> ServeConfig {
        self.quanta.push((tenant.into(), quantum.max(1)));
        self
    }

    /// The effective per-turn fuel budget.
    pub fn fuel_slice(&self) -> u64 {
        self.engine.fuel_slice.unwrap_or(DEFAULT_FUEL_SLICE).max(1)
    }

    /// The worker count after auto-sizing.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        }
    }
}

/// Outcome of a submission attempt.
#[derive(Debug)]
pub enum Submit {
    /// The job was admitted; track it through the handle.
    Accepted(JobHandle),
    /// The admission queue is full (after the timeout, for
    /// [`ServeEngine::submit_timeout`]); the job is handed back.
    Rejected(Job),
    /// The job's module failed validation at admission.
    Invalid {
        /// The job, handed back.
        job: Job,
        /// The validation error.
        error: String,
    },
    /// The engine is draining or shut down; the job is handed back.
    Closed(Job),
}

impl Submit {
    /// The handle, if the job was accepted.
    pub fn handle(self) -> Option<JobHandle> {
        match self {
            Submit::Accepted(h) => Some(h),
            _ => None,
        }
    }

    /// `true` if the job was admitted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, Submit::Accepted(_))
    }
}

/// Terminal state of a served job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The entry function returned these values.
    Done(Vec<Value>),
    /// Link error, monitor-attach error, or trap.
    Failed(String),
    /// Cancelled via [`JobHandle::cancel`] (or [`ServeEngine::abort`]).
    Cancelled,
    /// The job's deadline passed before it finished.
    DeadlineExceeded,
}

impl JobStatus {
    /// `true` for [`JobStatus::Done`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Done(_))
    }

    /// The result values, if the job completed.
    pub fn values(&self) -> Option<&[Value]> {
        match self {
            JobStatus::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// The result of one served job.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Job name.
    pub name: String,
    /// Tenant the job billed to.
    pub tenant: String,
    /// Scheduling class.
    pub priority: Priority,
    /// Worker that finalized the job.
    pub worker: usize,
    /// Terminal status.
    pub status: JobStatus,
    /// The monitor's final report (after detach), if one was attached —
    /// produced even for cancelled jobs, covering what actually ran.
    pub report: Option<Report>,
    /// The process's engine counters at finalization.
    pub stats: EngineStats,
    /// Fuel slices executed.
    pub slices: u64,
    /// Times the job resumed on a different worker than its previous
    /// slice ran on.
    pub migrations: u64,
    /// Admission → first slice.
    pub queue_delay: Duration,
    /// Admission → finalization.
    pub latency: Duration,
}

/// Per-tenant accounting, from [`ServeEngine::tenant_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Fuel billed to this tenant so far.
    pub fuel_spent: u64,
    /// Times one of its tasks was parked for budget exhaustion.
    pub throttles: u64,
    /// Jobs finalized (any status).
    pub jobs: u64,
}

/// Fleet-wide totals returned by [`ServeEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Merged engine + scheduler counters (see [`ServeEngine::stats`]).
    pub stats: EngineStats,
    /// Monitor reports folded by title with [`Report::merge`].
    pub merged_reports: Vec<Report>,
    /// Per-tenant accounting, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
    /// Jobs finalized over the engine's lifetime.
    pub completed: u64,
}

impl ServeSummary {
    /// The merged report with this title, if any job produced one.
    pub fn merged_report(&self, title: &str) -> Option<&Report> {
        self.merged_reports.iter().find(|r| r.title == title)
    }
}

/// Tracks one admitted job; cheap to clone.
#[derive(Clone)]
pub struct JobHandle {
    state: Arc<JobState>,
    shared: Weak<Shared>,
}

impl JobHandle {
    /// The job's name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// Requests cancellation; takes effect at the next slice boundary
    /// (immediately if the job is queued or throttled). Idempotent; a
    /// no-op once the job finished.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::SeqCst);
        if let Some(shared) = self.shared.upgrade() {
            // Wake parked workers so a cancelled-but-throttled job is
            // finalized promptly instead of at the next natural round.
            let _guard = shared.inject.lock().expect("injector poisoned");
            shared.work.notify_all();
        }
    }

    /// `true` once cancellation was requested (the job may still be
    /// running its final slice).
    pub fn is_cancelled(&self) -> bool {
        self.state.cancelled.load(Ordering::SeqCst)
    }

    /// The outcome, if the job already finished.
    pub fn try_outcome(&self) -> Option<ServeOutcome> {
        self.state.done.lock().expect("job slot poisoned").clone()
    }

    /// Blocks until the job finishes.
    pub fn wait(&self) -> ServeOutcome {
        let mut slot = self.state.done.lock().expect("job slot poisoned");
        loop {
            if let Some(out) = slot.as_ref() {
                return out.clone();
            }
            slot = self.state.cv.wait(slot).expect("job slot poisoned");
        }
    }

    /// As [`JobHandle::wait`], up to `timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServeOutcome> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.state.done.lock().expect("job slot poisoned");
        loop {
            if let Some(out) = slot.as_ref() {
                return Some(out.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (s, _) =
                self.state.cv.wait_timeout(slot, deadline - now).expect("job slot poisoned");
            slot = s;
        }
    }
}

impl core::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("JobHandle")
            .field("name", &self.state.name)
            .field("done", &self.try_outcome().is_some())
            .finish()
    }
}

struct JobState {
    name: String,
    cancelled: AtomicBool,
    done: Mutex<Option<ServeOutcome>>,
    cv: Condvar,
}

/// One job's scheduling state. Before the first slice `process` is
/// `None` (instantiation is lazy, on the first worker to pick the task
/// up); afterwards it carries the suspended process + worker-built
/// monitor between workers inside a [`Handoff`].
struct Task {
    name: String,
    tenant: String,
    priority: Priority,
    entry: String,
    args: Vec<Value>,
    artifact: Arc<ModuleArtifact>,
    monitor_factory: Option<crate::MonitorFactory>,
    linker_factory: Option<crate::LinkerFactory>,
    state: Arc<JobState>,
    admitted_at: Instant,
    deadline: Option<Instant>,
    quantum: Option<u64>,

    process: Option<Process>,
    monitor: Option<(MonitorHandle, Rc<RefCell<dyn Monitor>>)>,
    started: bool,
    first_slice_at: Option<Instant>,
    fuel_seen: u64,
    slices: u64,
    migrations: u64,
    last_worker: Option<usize>,
    consecutive: u64,
}

/// Admission queue: per-priority FIFOs of tasks not yet picked up.
struct Inject {
    qs: [VecDeque<Handoff<Task>>; 3],
    closed: bool,
    paused: bool,
}

impl Inject {
    fn len(&self) -> usize {
        self.qs.iter().map(VecDeque::len).sum()
    }
}

/// One worker's private deques (other workers lock them only to steal).
#[derive(Default)]
struct Local {
    qs: [VecDeque<Handoff<Task>>; 3],
}

struct Tenant {
    quantum: Option<u64>,
    deficit: i64,
    fuel_spent: u64,
    throttles: u64,
    jobs: u64,
    throttled: Vec<Handoff<Task>>,
}

#[derive(Default)]
struct Agg {
    stats: EngineStats,
    reports: Vec<Report>,
    completed: u64,
    in_flight: u64,
}

struct Shared {
    engine: EngineConfig,
    fuel_slice: u64,
    stride: u64,
    round_fuel: u64,
    default_quantum: Option<u64>,
    quanta: HashMap<String, u64>,
    queue_capacity: usize,
    workers: usize,

    inject: Mutex<Inject>,
    /// Signalled (with `inject` held) when work may be available.
    work: Condvar,
    /// Signalled (with `inject` held) when queue space frees up.
    space: Condvar,
    /// Queued-runnable tasks per priority, across the injector and every
    /// local deque (throttled tasks excluded) — the lock-free hint
    /// preemption and slice-sizing decisions read.
    pending: [AtomicU64; 3],

    locals: Vec<Mutex<Local>>,
    tenants: Mutex<HashMap<String, Tenant>>,
    agg: Mutex<Agg>,
    /// Signalled (with `agg` held) when `in_flight` hits zero.
    idle: Condvar,

    epoch_fuel: AtomicU64,
    steals: AtomicU64,
    slices_executed: AtomicU64,
    budget_throttles: AtomicU64,
    queue_depth_max: AtomicU64,
    admission_hits: AtomicU64,
    admission_misses: AtomicU64,

    shutdown: AtomicBool,
    abort: AtomicBool,
    cache: Arc<ArtifactCache>,
}

impl Shared {
    fn pending_above(&self, p: Priority) -> bool {
        self.pending[..p.index()].iter().any(|c| c.load(Ordering::Relaxed) > 0)
    }

    fn pending_at(&self, p: Priority) -> bool {
        self.pending[p.index()].load(Ordering::Relaxed) > 0
    }

    fn pending_any(&self) -> bool {
        self.pending.iter().any(|c| c.load(Ordering::Relaxed) > 0)
    }

    fn quantum_for(&self, tenant: &str) -> Option<u64> {
        self.quanta.get(tenant).copied().or(self.default_quantum)
    }
}

/// The work-stealing multi-tenant serving engine; see the
/// [module docs](self).
pub struct ServeEngine {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawns the worker threads with a private [`ArtifactCache`].
    pub fn new(config: ServeConfig) -> ServeEngine {
        ServeEngine::with_cache(config, Arc::new(ArtifactCache::new()))
    }

    /// Spawns the worker threads, instantiating through a caller-owned
    /// cache — a long-lived server keeps its kernels warm across engine
    /// restarts (and shares them with batch [`Pool`](crate::Pool) runs).
    pub fn with_cache(config: ServeConfig, cache: Arc<ArtifactCache>) -> ServeEngine {
        let workers = config.effective_workers();
        let shared = Arc::new(Shared {
            engine: config.engine.clone(),
            fuel_slice: config.fuel_slice(),
            stride: config.stride.max(1),
            round_fuel: config.round_fuel.max(1),
            default_quantum: config.default_quantum,
            quanta: config.quanta.iter().cloned().collect(),
            queue_capacity: config.queue_capacity.max(1),
            workers,
            inject: Mutex::new(Inject {
                qs: Default::default(),
                closed: false,
                paused: config.start_paused,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            pending: Default::default(),
            locals: (0..workers).map(|_| Mutex::new(Local::default())).collect(),
            tenants: Mutex::new(HashMap::new()),
            agg: Mutex::new(Agg::default()),
            idle: Condvar::new(),
            epoch_fuel: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            slices_executed: AtomicU64::new(0),
            budget_throttles: AtomicU64::new(0),
            queue_depth_max: AtomicU64::new(0),
            admission_hits: AtomicU64::new(0),
            admission_misses: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            cache,
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wizard-serve-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn serve worker")
            })
            .collect();
        ServeEngine { shared, workers: threads }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Releases workers spawned with [`ServeConfig::start_paused`].
    pub fn start(&self) {
        let mut inject = self.shared.inject.lock().expect("injector poisoned");
        inject.paused = false;
        self.shared.work.notify_all();
    }

    /// Admits `job` if the queue has space; never blocks.
    pub fn try_submit(&self, job: Job) -> Submit {
        self.submit_inner(job, None)
    }

    /// Admits `job`, waiting for queue space if necessary.
    pub fn submit_blocking(&self, job: Job) -> Submit {
        self.submit_inner(job, Some(None))
    }

    /// Admits `job`, waiting up to `timeout` for queue space.
    pub fn submit_timeout(&self, job: Job, timeout: Duration) -> Submit {
        self.submit_inner(job, Some(Some(timeout)))
    }

    /// `wait`: `None` = fail fast, `Some(None)` = wait forever,
    /// `Some(Some(d))` = wait up to `d`.
    fn submit_inner(&self, job: Job, wait: Option<Option<Duration>>) -> Submit {
        // Validate (or warm-hit) through the shared cache *before* taking
        // any queue space: invalid modules are rejected synchronously and
        // never occupy a worker.
        let artifact = match self.shared.cache.lookup(&job.module) {
            Ok((art, hit)) => {
                if hit {
                    self.shared.admission_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.shared.admission_misses.fetch_add(1, Ordering::Relaxed);
                }
                art
            }
            Err(e) => return Submit::Invalid { error: e.to_string(), job },
        };

        let deadline = wait.and_then(|w| w).map(|d| Instant::now() + d);
        let mut inject = self.shared.inject.lock().expect("injector poisoned");
        loop {
            if inject.closed {
                return Submit::Closed(job);
            }
            if inject.len() < self.shared.queue_capacity {
                break;
            }
            match wait {
                None => return Submit::Rejected(job),
                Some(_) => {
                    let now = Instant::now();
                    if let Some(d) = deadline {
                        if now >= d {
                            return Submit::Rejected(job);
                        }
                        let (g, _) = self
                            .shared
                            .space
                            .wait_timeout(inject, d - now)
                            .expect("injector poisoned");
                        inject = g;
                    } else {
                        inject = self.shared.space.wait(inject).expect("injector poisoned");
                    }
                }
            }
        }

        let now = Instant::now();
        let state = Arc::new(JobState {
            name: job.name.clone(),
            cancelled: AtomicBool::new(false),
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        let quantum = self.shared.quantum_for(&job.tenant);
        let task = Task {
            name: job.name,
            tenant: job.tenant,
            priority: job.priority,
            entry: job.entry,
            args: job.args,
            artifact,
            monitor_factory: job.monitor,
            linker_factory: job.linker,
            state: Arc::clone(&state),
            admitted_at: now,
            deadline: job.deadline.map(|d| now + d),
            quantum,
            process: None,
            monitor: None,
            started: false,
            first_slice_at: None,
            fuel_seen: 0,
            slices: 0,
            migrations: 0,
            last_worker: None,
            consecutive: 0,
        };
        let p = task.priority.index();
        // SAFETY: the task owns no non-Send state yet (`process` and
        // `monitor` are None); everything non-Send it will ever hold is
        // created on a worker thread and confined to the task, which only
        // moves between threads through these Mutex-guarded queues.
        inject.qs[p].push_back(unsafe { Handoff::new(task) });
        let depth = inject.len() as u64;
        self.shared.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
        self.shared.pending[p].fetch_add(1, Ordering::Relaxed);
        self.shared.agg.lock().expect("aggregate poisoned").in_flight += 1;
        self.shared.work.notify_one();
        drop(inject);
        Submit::Accepted(JobHandle { state, shared: Arc::downgrade(&self.shared) })
    }

    /// Jobs admitted but not yet finalized.
    pub fn in_flight(&self) -> u64 {
        self.shared.agg.lock().expect("aggregate poisoned").in_flight
    }

    /// Jobs finalized so far.
    pub fn completed(&self) -> u64 {
        self.shared.agg.lock().expect("aggregate poisoned").completed
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.inject.lock().expect("injector poisoned").len()
    }

    /// Fleet-wide counters so far: merged per-job [`EngineStats`], the
    /// admission cache traffic this engine caused, and the scheduler
    /// counters (`steals`, `queue_depth_max`, `slices_executed`,
    /// `budget_throttles`).
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.shared.agg.lock().expect("aggregate poisoned").stats;
        stats.merge(&EngineStats {
            artifact_cache_hits: self.shared.admission_hits.load(Ordering::Relaxed),
            artifact_cache_misses: self.shared.admission_misses.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            queue_depth_max: self.shared.queue_depth_max.load(Ordering::Relaxed),
            slices_executed: self.shared.slices_executed.load(Ordering::Relaxed),
            budget_throttles: self.shared.budget_throttles.load(Ordering::Relaxed),
            ..EngineStats::default()
        });
        stats
    }

    /// Per-tenant accounting, sorted by tenant name.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let tenants = self.shared.tenants.lock().expect("tenants poisoned");
        let mut out: Vec<TenantStats> = tenants
            .iter()
            .map(|(name, t)| TenantStats {
                tenant: name.clone(),
                fuel_spent: t.fuel_spent,
                throttles: t.throttles,
                jobs: t.jobs,
            })
            .collect();
        out.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        out
    }

    /// Monitor reports finalized so far, folded by title.
    pub fn merged_reports(&self) -> Vec<Report> {
        self.shared.agg.lock().expect("aggregate poisoned").reports.clone()
    }

    /// Closes admission and blocks until every admitted job finalizes.
    /// Further submissions return [`Submit::Closed`].
    pub fn drain(&self) {
        {
            let mut inject = self.shared.inject.lock().expect("injector poisoned");
            inject.closed = true;
            inject.paused = false;
            self.shared.work.notify_all();
            self.shared.space.notify_all();
        }
        let mut agg = self.shared.agg.lock().expect("aggregate poisoned");
        while agg.in_flight > 0 {
            agg = self.shared.idle.wait(agg).expect("aggregate poisoned");
        }
    }

    /// Graceful shutdown: [`ServeEngine::drain`], stop the workers, and
    /// return the fleet-wide summary.
    pub fn shutdown(mut self) -> ServeSummary {
        self.drain();
        self.stop_workers();
        self.summary()
    }

    /// Emergency shutdown: cancels every queued, throttled and running
    /// job (they finalize as [`JobStatus::Cancelled`], monitors detached
    /// as usual), then stops the workers.
    pub fn abort(mut self) -> ServeSummary {
        self.shared.abort.store(true, Ordering::SeqCst);
        self.drain();
        self.stop_workers();
        self.summary()
    }

    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _inject = self.shared.inject.lock().expect("injector poisoned");
            self.shared.work.notify_all();
        }
        for t in self.workers.drain(..) {
            t.join().expect("serve worker panicked");
        }
    }

    fn summary(&self) -> ServeSummary {
        ServeSummary {
            stats: self.stats(),
            merged_reports: self.merged_reports(),
            tenants: self.tenant_stats(),
            completed: self.completed(),
        }
    }
}

impl Drop for ServeEngine {
    /// Graceful: drains outstanding jobs, then joins the workers.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.drain();
            self.stop_workers();
        }
    }
}

impl core::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("workers", &self.shared.workers)
            .field("in_flight", &self.in_flight())
            .field("completed", &self.completed())
            .finish()
    }
}

// ---- the scheduler ----

fn worker_loop(w: usize, shared: &Shared) {
    // Cheap xorshift for randomized victim selection; seeded per worker.
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ ((w as u64 + 1) << 17);
    loop {
        if let Some(task) = next_task(w, shared, &mut rng) {
            execute(w, shared, task);
            continue;
        }
        // No runnable work: advance the fairness round if anything is
        // parked on a budget (starvation-freedom under idle workers).
        if refill_round(shared, true) {
            continue;
        }
        let inject = shared.inject.lock().expect("injector poisoned");
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Timed wait: steals and cross-worker state changes don't always
        // signal this worker, so re-poll at a coarse interval.
        let _ =
            shared.work.wait_timeout(inject, Duration::from_millis(1)).expect("injector poisoned");
    }
}

/// Picks the highest-priority runnable task: own deque first (LIFO, ties
/// broken toward locality), then the admission queue (FIFO), then a steal
/// from a random victim (their oldest task).
fn next_task(w: usize, shared: &Shared, rng: &mut u64) -> Option<Handoff<Task>> {
    // Injector hint read before locking our deque; stale reads only cost
    // one out-of-order pick, never a missed task.
    let inject_best = Priority::ALL
        .into_iter()
        .find(|p| shared.pending_at(*p) && injector_has(shared, *p))
        .map(Priority::index);
    {
        let mut local = shared.locals[w].lock().expect("local deque poisoned");
        for p in 0..3 {
            if inject_best.is_some_and(|b| b < p) {
                break; // the injector holds strictly more urgent work
            }
            if let Some(task) = local.qs[p].pop_back() {
                shared.pending[p].fetch_sub(1, Ordering::Relaxed);
                return Some(task);
            }
        }
    }
    {
        let mut inject = shared.inject.lock().expect("injector poisoned");
        if !inject.paused {
            for p in 0..3 {
                if let Some(task) = inject.qs[p].pop_front() {
                    shared.pending[p].fetch_sub(1, Ordering::Relaxed);
                    // Grab a batch behind the task we'll run: a worker
                    // claims its share of the backlog into its local
                    // deque, which is what gives idle peers something to
                    // steal (and keeps the injector lock cool).
                    let extra =
                        (inject.qs[p].len() / shared.workers).min(BATCH).min(inject.qs[p].len());
                    let batch: Vec<Handoff<Task>> = inject.qs[p].drain(..extra).collect();
                    if extra > 0 {
                        shared.space.notify_all();
                    } else {
                        shared.space.notify_one();
                    }
                    drop(inject);
                    if !batch.is_empty() {
                        let mut local = shared.locals[w].lock().expect("local deque poisoned");
                        // Oldest at the front: LIFO pops favor the
                        // newest (hottest) task, steals take the oldest.
                        for task in batch.into_iter().rev() {
                            local.qs[p].push_front(task);
                        }
                    }
                    return Some(task);
                }
            }
        } else {
            return None; // paused: don't steal either
        }
    }
    // Steal: visit the other workers once, in a randomized rotation.
    let n = shared.workers;
    if n > 1 {
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let start = (*rng as usize) % n;
        for k in 0..n {
            let v = (start + k) % n;
            if v == w {
                continue;
            }
            let mut victim = shared.locals[v].lock().expect("local deque poisoned");
            for p in 0..3 {
                if let Some(task) = victim.qs[p].pop_front() {
                    shared.pending[p].fetch_sub(1, Ordering::Relaxed);
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(task);
                }
            }
        }
    }
    None
}

/// Most extra tasks one injector visit moves into a local deque.
const BATCH: usize = 8;

fn injector_has(shared: &Shared, p: Priority) -> bool {
    let inject = shared.inject.lock().expect("injector poisoned");
    !inject.paused && !inject.qs[p.index()].is_empty()
}

/// Runs one task until it finishes, is preempted, or is parked on its
/// tenant's budget.
fn execute(w: usize, shared: &Shared, mut h: Handoff<Task>) {
    // An over-budget tenant's task parks at pickup, before burning a
    // slice — it only left the throttled list via a refill race or was
    // sitting in a deque when its tenant ran dry. (Cancelled tasks fall
    // through: the terminal check below finalizes them.)
    let over_budget_at_pickup = {
        let t = h.get_mut();
        t.quantum.is_some() && !aborted(shared, t) && {
            let mut tenants = shared.tenants.lock().expect("tenants poisoned");
            tenant_entry(&mut tenants, &t.tenant, t.quantum).deficit <= 0
        }
    };
    if over_budget_at_pickup {
        park_throttled(shared, h);
        return;
    }
    // Lazy instantiation, on the worker: linker and monitor are built
    // here, so their Rc-based state is born confined to this task.
    {
        let t = h.get_mut();
        if t.process.is_none() && !aborted(shared, t) {
            let linker = t.linker_factory.as_ref().map_or_else(Linker::new, |make| make());
            match Process::instantiate(Arc::clone(&t.artifact), shared.engine.clone(), &linker) {
                Ok(mut process) => {
                    if let Some(make) = &t.monitor_factory {
                        let m = make();
                        match process.attach_monitor_dyn(Rc::clone(&m)) {
                            Ok(handle) => t.monitor = Some((handle, m)),
                            Err(e) => {
                                drop(process);
                                finalize(
                                    w,
                                    shared,
                                    h,
                                    JobStatus::Failed(format!("monitor attach error: {e}")),
                                );
                                return;
                            }
                        }
                    }
                    t.process = Some(process);
                }
                Err(e) => {
                    finalize(w, shared, h, JobStatus::Failed(format!("link error: {e}")));
                    return;
                }
            }
        }
    }

    loop {
        // Terminal checks at every slice boundary.
        let status = {
            let t = h.get_mut();
            if aborted(shared, t) {
                Some(JobStatus::Cancelled)
            } else if t.deadline.is_some_and(|d| Instant::now() >= d) {
                Some(JobStatus::DeadlineExceeded)
            } else {
                None
            }
        };
        if let Some(status) = status {
            finalize(w, shared, h, status);
            return;
        }

        let turn = {
            let t = h.get_mut();
            if t.last_worker.is_some_and(|prev| prev != w) {
                t.migrations += 1;
            }
            t.last_worker = Some(w);
            // Adaptive slicing: when this task is the only runnable work
            // in the engine, run longer turns — fewer suspend/resume
            // round-trips, same preemption point the moment new work
            // arrives (the *next* boundary after admission).
            let fuel = if shared.pending_any() {
                shared.fuel_slice
            } else {
                shared.fuel_slice.saturating_mul(8)
            };
            let process = t.process.as_mut().expect("instantiated above");
            let turn = if t.started {
                process.resume(fuel)
            } else {
                t.started = true;
                t.first_slice_at = Some(Instant::now());
                process.run_export_bounded(&t.entry, &t.args, fuel)
            };
            t.slices += 1;
            shared.slices_executed.fetch_add(1, Ordering::Relaxed);

            // Bill the slice's fuel to the tenant.
            let fuel_now = process.stats().fuel_consumed;
            let delta = fuel_now - t.fuel_seen;
            t.fuel_seen = fuel_now;
            if delta > 0 {
                let mut tenants = shared.tenants.lock().expect("tenants poisoned");
                let tenant = tenant_entry(&mut tenants, &t.tenant, t.quantum);
                tenant.fuel_spent += delta;
                if tenant.quantum.is_some() {
                    tenant.deficit = tenant.deficit.saturating_sub_unsigned(delta);
                }
                drop(tenants);
                shared.epoch_fuel.fetch_add(delta, Ordering::Relaxed);
                if shared.epoch_fuel.load(Ordering::Relaxed) >= shared.round_fuel {
                    refill_round(shared, false);
                }
            }
            turn
        };

        match turn {
            Ok(RunOutcome::Done(values)) => {
                finalize(w, shared, h, JobStatus::Done(values));
                return;
            }
            Err(trap) => {
                finalize(w, shared, h, JobStatus::Failed(trap.to_string()));
                return;
            }
            Ok(RunOutcome::OutOfFuel) => {
                let (priority, over_budget) = {
                    let t = h.get_mut();
                    let over = t.quantum.is_some() && {
                        let mut tenants = shared.tenants.lock().expect("tenants poisoned");
                        tenant_entry(&mut tenants, &t.tenant, t.quantum).deficit <= 0
                    };
                    (t.priority, over)
                };
                if over_budget {
                    park_throttled(shared, h);
                    return;
                }
                let preempt = shared.pending_above(priority);
                let rotate = {
                    let t = h.get_mut();
                    t.consecutive += 1;
                    t.consecutive >= shared.stride
                        && (shared.pending_at(priority) || local_has(shared, w, priority))
                };
                if preempt || rotate {
                    // Yield: oldest end of our own deque, so equal-priority
                    // neighbours round-robin while hotter tasks (pushed
                    // since) still pop first.
                    h.get_mut().consecutive = 0;
                    let p = priority.index();
                    let mut local = shared.locals[w].lock().expect("local deque poisoned");
                    local.qs[p].push_front(h);
                    shared.pending[p].fetch_add(1, Ordering::Relaxed);
                    drop(local);
                    // A peer may be idle-parked while this deque has work.
                    let _inject = shared.inject.lock().expect("injector poisoned");
                    shared.work.notify_one();
                    return;
                }
                // Keep running the same task (hot) for another slice.
            }
        }
    }
}

/// Parks a task on its tenant's exhausted budget until a round refill.
fn park_throttled(shared: &Shared, mut h: Handoff<Task>) {
    let (name, quantum) = {
        let t = h.get_mut();
        t.consecutive = 0;
        (t.tenant.clone(), t.quantum)
    };
    shared.budget_throttles.fetch_add(1, Ordering::Relaxed);
    let mut tenants = shared.tenants.lock().expect("tenants poisoned");
    let tenant = tenant_entry(&mut tenants, &name, quantum);
    tenant.throttles += 1;
    tenant.throttled.push(h);
}

fn aborted(shared: &Shared, t: &Task) -> bool {
    shared.abort.load(Ordering::SeqCst) || t.state.cancelled.load(Ordering::SeqCst)
}

fn local_has(shared: &Shared, w: usize, p: Priority) -> bool {
    !shared.locals[w].lock().expect("local deque poisoned").qs[p.index()].is_empty()
}

fn tenant_entry<'a>(
    tenants: &'a mut HashMap<String, Tenant>,
    name: &str,
    quantum: Option<u64>,
) -> &'a mut Tenant {
    tenants.entry(name.to_string()).or_insert_with(|| Tenant {
        quantum,
        deficit: quantum.map_or(0, |q| q as i64),
        fuel_spent: 0,
        throttles: 0,
        jobs: 0,
        throttled: Vec::new(),
    })
}

/// Advances the fairness round: refills every tenant's deficit by one
/// quantum (capped at one quantum of credit — DRR) and requeues throttled
/// tasks whose tenant is solvent again. `idle` is set when a worker found
/// no runnable work — then a round passes even if the fuel epoch isn't
/// full, so throttled work can never deadlock. Returns `true` if any task
/// was released.
fn refill_round(shared: &Shared, idle: bool) -> bool {
    let abort = shared.abort.load(Ordering::SeqCst);
    let released: Vec<Handoff<Task>> = {
        let mut tenants = shared.tenants.lock().expect("tenants poisoned");
        let any_throttled = tenants.values().any(|t| !t.throttled.is_empty());
        if idle && !any_throttled {
            return false;
        }
        shared.epoch_fuel.store(0, Ordering::Relaxed);
        let mut out = Vec::new();
        for t in tenants.values_mut() {
            if let Some(q) = t.quantum {
                t.deficit = t.deficit.saturating_add_unsigned(q).min(q as i64);
            }
            if t.deficit > 0 || abort {
                out.append(&mut t.throttled);
            }
        }
        out
    };
    if released.is_empty() {
        return false;
    }
    let mut inject = shared.inject.lock().expect("injector poisoned");
    for h in released {
        let p = h.get().priority.index();
        // Internal requeue: released tasks bypass the admission capacity
        // (they were admitted long ago) and rejoin the global queue so
        // any worker can pick them up.
        inject.qs[p].push_back(h);
        shared.pending[p].fetch_add(1, Ordering::Relaxed);
    }
    shared.work.notify_all();
    true
}

/// Finalizes a task: detach its monitor (restoring the zero-overhead
/// baseline — also for cancelled jobs), snapshot report + stats, resolve
/// the handle, and fold everything into the fleet aggregates.
fn finalize(w: usize, shared: &Shared, h: Handoff<Task>, status: JobStatus) {
    let mut t = h.into_inner();
    let report = t.monitor.take().map(|(handle, monitor)| {
        let process = t.process.as_mut().expect("monitored task has a process");
        // Drop a parked mid-run state first (cancel/deadline paths), so
        // the monitor's final samples see a quiesced process.
        if process.is_suspended() {
            process.cancel_suspended();
        }
        process.detach_monitor(handle).expect("attached monitor detaches");
        let r = monitor.borrow().report();
        r
    });
    if let Some(process) = t.process.as_mut() {
        if process.is_suspended() {
            process.cancel_suspended();
        }
    }
    let stats = t.process.as_ref().map(|p| p.stats()).unwrap_or_default();
    let now = Instant::now();
    let outcome = ServeOutcome {
        name: t.name.clone(),
        tenant: t.tenant.clone(),
        priority: t.priority,
        worker: w,
        status,
        report: report.clone(),
        stats,
        slices: t.slices,
        migrations: t.migrations,
        queue_delay: t.first_slice_at.unwrap_or(now).duration_since(t.admitted_at),
        latency: now.duration_since(t.admitted_at),
    };
    drop(t.process.take());

    {
        let mut tenants = shared.tenants.lock().expect("tenants poisoned");
        tenant_entry(&mut tenants, &t.tenant, t.quantum).jobs += 1;
    }
    {
        let mut agg = shared.agg.lock().expect("aggregate poisoned");
        agg.stats.merge(&outcome.stats);
        if let Some(r) = &report {
            match agg.reports.iter_mut().find(|m| m.title == r.title) {
                Some(m) => m.merge(r),
                None => agg.reports.push(r.clone()),
            }
        }
        agg.completed += 1;
        agg.in_flight -= 1;
        if agg.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
    *t.state.done.lock().expect("job slot poisoned") = Some(outcome);
    t.state.cv.notify_all();
}
