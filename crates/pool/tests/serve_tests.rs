//! Scheduler tests for the work-stealing multi-tenant serving engine:
//! correctness across worker counts, stealing, strict priorities,
//! deficit-round-robin tenant fairness (starvation-freedom), budgets
//! under cancellation, deadlines, backpressure, and drain/shutdown.
//!
//! CI runs this file with `--test-threads=1` pinned so the timing-
//! sensitive assertions (steal counters, the 1-worker throughput
//! regression) don't fight sibling tests for the host's cores.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wizard_engine::{
    CountProbe, EngineConfig, EngineStats, InstrumentationCtx, Monitor, ProbeError, Process, Report,
};
use wizard_monitors::HotnessMonitor;
use wizard_pool::{Job, JobStatus, Pool, PoolConfig, Priority, ServeConfig, ServeEngine, Submit};
use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard_wasm::module::Module;
use wizard_wasm::types::ValType::I32;

/// `run(n)` = sum 0..n; ~3 fuel per iteration, so `n` controls job length.
fn sum_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("run", f);
    mb.build().unwrap()
}

fn sum_job(name: impl Into<String>, n: i32) -> Job {
    Job::new(name, sum_module(), "run", vec![wizard_engine::Value::I32(n)])
}

fn sum_of(n: i32) -> wizard_engine::Value {
    wizard_engine::Value::I32((0..n).sum())
}

fn config(workers: usize, fuel_slice: u64) -> ServeConfig {
    ServeConfig {
        workers,
        engine: EngineConfig::builder().fuel_slice(fuel_slice).build(),
        ..ServeConfig::default()
    }
}

#[test]
fn fleet_results_are_correct_across_worker_counts() {
    for workers in [1usize, 2, 4] {
        let engine = ServeEngine::new(config(workers, 500));
        assert_eq!(engine.workers(), workers);
        let handles: Vec<_> = (0..12)
            .map(|k| engine.try_submit(sum_job(format!("sum-{k}"), 2_000)).handle().unwrap())
            .collect();
        for h in &handles {
            let out = h.wait();
            assert_eq!(out.status.values(), Some(&[sum_of(2_000)][..]), "{}", out.name);
            assert!(out.slices >= 2, "{} was never preempted", out.name);
            assert!(out.latency >= out.queue_delay);
        }
        let summary = engine.shutdown();
        assert_eq!(summary.completed, 12);
        assert!(summary.stats.suspensions > 0);
        assert!(summary.stats.slices_executed >= 24);
        assert!(summary.stats.queue_depth_max >= 1);
        // 12 byte-identical modules resolve to one shared artifact at
        // the admission path: one build, 11 warm hits.
        assert_eq!(summary.stats.artifact_cache_misses, 1);
        assert_eq!(summary.stats.artifact_cache_hits, 11);
    }
}

#[test]
fn work_is_stolen_between_workers() {
    // Two workers, stride 1 (rotate every slice, so local deques stay
    // populated) and many multi-slice jobs: whichever worker drains the
    // admission queue first must steal from the other's deque. The exact
    // count is timing-dependent; its being nonzero is not, given enough
    // attempts — zero steals across every attempt would need the two
    // workers to finish their local work perfectly in lockstep each time.
    let mut total_steals = 0;
    for _ in 0..5 {
        let mut cfg = config(2, 200);
        cfg.stride = 1;
        let engine = ServeEngine::new(cfg);
        let handles: Vec<_> = (0..16)
            .map(|k| engine.try_submit(sum_job(format!("s-{k}"), 400)).handle().unwrap())
            .collect();
        for h in &handles {
            assert!(h.wait().status.is_ok());
        }
        let summary = engine.shutdown();
        total_steals += summary.stats.steals;
        if total_steals > 0 {
            break;
        }
    }
    assert!(total_steals > 0, "no task was ever stolen across 5 two-worker fleets");
}

#[test]
fn jobs_migrate_across_workers_with_exact_reports() {
    // Stolen suspended tasks resume on the thief: some job records a
    // migration, and every monitor report stays exactly what a dedicated
    // single-process run produces.
    let mut migrated = 0;
    for _ in 0..5 {
        let mut cfg = config(2, 200);
        cfg.stride = 1;
        let engine = ServeEngine::new(cfg);
        let handles: Vec<_> = (0..12)
            .map(|k| {
                let job = sum_job(format!("m-{k}"), 300).with_monitor(HotnessMonitor::new);
                engine.try_submit(job).handle().unwrap()
            })
            .collect();
        let outcomes: Vec<_> = handles.iter().map(|h| h.wait()).collect();
        engine.shutdown();

        // Reference: the same program, monitored, in a dedicated process.
        let mut process = Process::new(
            sum_module(),
            EngineConfig::builder().fuel_slice(200).build(),
            &wizard_engine::store::Linker::new(),
        )
        .unwrap();
        let mon = process.attach_monitor(HotnessMonitor::new()).unwrap();
        process.invoke_export("run", &[wizard_engine::Value::I32(300)]).unwrap();
        process.detach_monitor(mon.handle()).unwrap();
        let expected = mon.report();

        for out in &outcomes {
            assert!(out.status.is_ok());
            assert_eq!(
                out.report.as_ref().unwrap().to_string(),
                expected.to_string(),
                "{}: report differs from a dedicated run (migrations={})",
                out.name,
                out.migrations
            );
            migrated += out.migrations;
        }
        if migrated > 0 {
            break;
        }
    }
    assert!(migrated > 0, "no job ever resumed on a different worker");
}

#[test]
fn strict_priority_orders_first_slices_on_one_worker() {
    // One worker, spawned paused: admit lows first, then highs. Strict
    // priority means every high job takes its first slice before any low
    // job does — deterministically, since there is one worker.
    let mut cfg = config(1, 300);
    cfg.start_paused = true;
    let engine = ServeEngine::new(cfg);
    let lows: Vec<_> = (0..4)
        .map(|k| {
            let job = sum_job(format!("low-{k}"), 150).at_priority(Priority::Low);
            engine.try_submit(job).handle().unwrap()
        })
        .collect();
    let highs: Vec<_> = (0..4)
        .map(|k| {
            let job = sum_job(format!("high-{k}"), 150).at_priority(Priority::High);
            engine.try_submit(job).handle().unwrap()
        })
        .collect();
    engine.start();
    let max_high_delay = highs.iter().map(|h| h.wait().queue_delay).max().unwrap();
    let min_low_delay = lows.iter().map(|h| h.wait().queue_delay).min().unwrap();
    assert!(
        max_high_delay <= min_low_delay,
        "a low-priority job started ({min_low_delay:?}) before a high one ({max_high_delay:?})"
    );
    engine.shutdown();
}

#[test]
fn saturating_high_priority_tenant_cannot_starve_low_priority_tenant() {
    // The starvation case strict priority alone would lose: a hog tenant
    // saturates the engine with high-priority work while a meek tenant
    // has one low-priority job. The hog's fuel budget throttles it every
    // round, so the meek job keeps making progress and finishes while
    // hog work is still queued.
    let mut cfg = config(1, 500);
    cfg.round_fuel = 20_000;
    cfg = cfg.tenant_budget("hog", 5_000);
    let engine = ServeEngine::new(cfg);
    let hogs: Vec<_> = (0..6)
        .map(|k| {
            let job =
                sum_job(format!("hog-{k}"), 20_000).for_tenant("hog").at_priority(Priority::High);
            engine.try_submit(job).handle().unwrap()
        })
        .collect();
    let meek = engine
        .try_submit(sum_job("meek", 4_000).for_tenant("meek").at_priority(Priority::Low))
        .handle()
        .unwrap();

    let meek_out = meek.wait();
    assert!(meek_out.status.is_ok());
    // The meek job finished; hog work must still be in flight (it needs
    // ~24x the meek job's fuel but is capped at 5k per 20k round).
    assert!(
        hogs.iter().any(|h| h.try_outcome().is_none()),
        "every hog job finished before the starved tenant's single job"
    );
    for h in &hogs {
        assert!(h.wait().status.is_ok());
    }
    let summary = engine.shutdown();
    assert!(summary.stats.budget_throttles > 0, "the hog tenant was never throttled");
    let hog = summary.tenants.iter().find(|t| t.tenant == "hog").unwrap();
    let meek_t = summary.tenants.iter().find(|t| t.tenant == "meek").unwrap();
    assert!(hog.throttles > 0);
    assert!(hog.fuel_spent > meek_t.fuel_spent);
    assert_eq!(hog.jobs, 6);
    assert_eq!(meek_t.jobs, 1);
}

/// A monitor that installs a real probe (so detach has baseline to
/// restore) and raises a flag when `on_detach` runs.
struct DetachFlag {
    flag: Arc<AtomicBool>,
    probe: CountProbe,
}

impl Monitor for DetachFlag {
    fn name(&self) -> &'static str {
        "detach-flag"
    }
    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let func = ctx.module().num_imported_funcs();
        ctx.add_local_probe_val(func, 0, self.probe.clone())?;
        Ok(())
    }
    fn on_detach(&mut self, _process: &mut Process) {
        self.flag.store(true, Ordering::SeqCst);
    }
    fn report(&self) -> Report {
        let mut r = Report::new(self.name());
        r.section("summary").count("entries", self.probe.cell().get());
        r
    }
}

#[test]
fn cancel_while_suspended_detaches_monitor_and_releases_budget() {
    // A budget-throttled job is parked *suspended mid-run*. Cancelling
    // it must finalize it as Cancelled, detach its monitor (restoring
    // the baseline — observed via on_detach), report the fuel it really
    // burned, and leave the tenant's budget usable by later jobs.
    let mut cfg = config(1, 500);
    cfg.round_fuel = 1_000_000; // rounds only advance when the worker idles
    cfg = cfg.tenant_budget("capped", 2_000);
    let engine = ServeEngine::new(cfg);
    let detached = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&detached);
    let job = sum_job("capped-long", 1_000_000)
        .for_tenant("capped")
        .with_monitor(move || DetachFlag { flag: Arc::clone(&flag), probe: CountProbe::new() });
    let h = engine.try_submit(job).handle().unwrap();

    // Wait until the job is parked on its budget, then cancel it.
    let start = Instant::now();
    while engine.stats().budget_throttles == 0 {
        assert!(start.elapsed() < Duration::from_secs(30), "job never got throttled");
        std::thread::sleep(Duration::from_millis(1));
    }
    h.cancel();
    let out = h.wait();
    assert_eq!(out.status, JobStatus::Cancelled);
    assert!(out.slices > 0, "the job had started");
    assert!(out.stats.fuel_consumed > 0, "burned fuel is still reported");
    assert!(detached.load(Ordering::SeqCst), "monitor was not detached on cancellation");
    let report = out.report.expect("cancelled jobs still report");
    assert!(report.get("summary").unwrap().count_of("entries") >= Some(1));

    // The tenant's budget recovered: a short job from the same tenant
    // completes (next round refills the deficit the dead job drained).
    let h2 = engine.try_submit(sum_job("capped-short", 100).for_tenant("capped")).handle().unwrap();
    assert!(h2.wait().status.is_ok(), "tenant budget leaked by the cancelled job");
    engine.shutdown();
}

#[test]
fn cancel_before_start_never_instantiates() {
    let mut cfg = config(1, 500);
    cfg.start_paused = true;
    let engine = ServeEngine::new(cfg);
    let h = engine.try_submit(sum_job("queued", 100)).handle().unwrap();
    h.cancel();
    assert!(h.is_cancelled());
    engine.start();
    let out = h.wait();
    assert_eq!(out.status, JobStatus::Cancelled);
    assert_eq!(out.slices, 0);
    assert_eq!(out.stats, EngineStats::default(), "no process was ever built");
    engine.shutdown();
}

#[test]
fn deadlines_cancel_queued_and_running_jobs_but_fuel_still_counts() {
    let engine = ServeEngine::new(config(1, 300));
    // Pre-expired: never takes a slice.
    let dead = engine
        .try_submit(sum_job("dead-on-arrival", 100).with_deadline(Duration::ZERO))
        .handle()
        .unwrap();
    let out = dead.wait();
    assert_eq!(out.status, JobStatus::DeadlineExceeded);
    assert_eq!(out.slices, 0);

    // Expires mid-run: takes slices until the boundary after the
    // deadline, and the fuel it burned is credited to tenant + fleet.
    let slow = engine
        .try_submit(
            sum_job("too-slow", i32::MAX).for_tenant("t").with_deadline(Duration::from_millis(50)),
        )
        .handle()
        .unwrap();
    let out = slow.wait();
    assert_eq!(out.status, JobStatus::DeadlineExceeded);
    assert!(out.slices > 0);
    assert!(out.stats.fuel_consumed > 0);
    let summary = engine.shutdown();
    assert!(summary.stats.fuel_consumed >= out.stats.fuel_consumed);
    let tenant = summary.tenants.iter().find(|t| t.tenant == "t").unwrap();
    assert_eq!(tenant.fuel_spent, out.stats.fuel_consumed, "mid-slice fuel was not credited");
}

#[test]
fn bounded_admission_backpressure() {
    let mut cfg = config(1, 500);
    cfg.queue_capacity = 2;
    cfg.start_paused = true; // nothing drains until start()
    let engine = ServeEngine::new(cfg);
    let h1 = engine.try_submit(sum_job("a", 50)).handle().unwrap();
    let h2 = engine.try_submit(sum_job("b", 50)).handle().unwrap();
    match engine.try_submit(sum_job("c", 50)) {
        Submit::Rejected(job) => assert_eq!(job.name, "c"),
        other => panic!("expected Rejected, got {other:?}"),
    }
    match engine.submit_timeout(sum_job("d", 50), Duration::from_millis(20)) {
        Submit::Rejected(job) => assert_eq!(job.name, "d"),
        other => panic!("expected timeout Rejected, got {other:?}"),
    }
    engine.start();
    // With workers draining, a blocking submit gets in.
    let h3 = match engine.submit_blocking(sum_job("e", 50)) {
        Submit::Accepted(h) => h,
        other => panic!("expected Accepted, got {other:?}"),
    };
    for h in [&h1, &h2, &h3] {
        assert!(h.wait().status.is_ok());
    }
    let summary = engine.shutdown();
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.stats.queue_depth_max, 2, "high-water mark of a capacity-2 queue");
}

#[test]
fn invalid_modules_are_rejected_at_admission() {
    let mut bad = sum_module();
    bad.exports.push(wizard_wasm::module::Export {
        name: "phantom".into(),
        kind: wizard_wasm::types::ExternKind::Func,
        index: 999,
    });
    let engine = ServeEngine::new(config(1, 500));
    match engine.try_submit(Job::new("bad", bad, "run", vec![])) {
        Submit::Invalid { job, .. } => assert_eq!(job.name, "bad"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    // Invalid submissions never occupy the queue or a worker.
    assert_eq!(engine.in_flight(), 0);
    let summary = engine.shutdown();
    assert_eq!(summary.completed, 0);
}

#[test]
fn drain_closes_admission() {
    let engine = ServeEngine::new(config(1, 500));
    let h = engine.try_submit(sum_job("last", 100)).handle().unwrap();
    engine.drain();
    assert!(h.try_outcome().is_some(), "drain waits for in-flight jobs");
    match engine.try_submit(sum_job("late", 10)) {
        Submit::Closed(job) => assert_eq!(job.name, "late"),
        other => panic!("expected Closed, got {other:?}"),
    }
    engine.shutdown();
}

#[test]
fn abort_cancels_everything_in_flight() {
    let mut cfg = config(1, 500);
    cfg.start_paused = true;
    let engine = ServeEngine::new(cfg);
    let handles: Vec<_> = (0..4)
        .map(|k| engine.try_submit(sum_job(format!("doomed-{k}"), i32::MAX)).handle().unwrap())
        .collect();
    engine.start();
    // Let at least one job start burning fuel before pulling the plug.
    let start = Instant::now();
    while engine.stats().slices_executed == 0 {
        assert!(start.elapsed() < Duration::from_secs(30), "no job ever started");
        std::thread::sleep(Duration::from_millis(1));
    }
    let summary = engine.abort();
    assert_eq!(summary.completed, 4);
    for h in &handles {
        assert_eq!(h.wait().status, JobStatus::Cancelled);
    }
}

#[test]
fn per_job_stats_never_carry_scheduler_counters() {
    // The scheduler counters are contributed by the engine exactly once,
    // not by processes: per-job stats report 0 for all four (mirroring
    // how processes never touch artifact_cache_*), so merging job stats
    // with the engine contribution cannot double-count.
    let mut cfg = config(2, 300);
    cfg.stride = 1;
    let engine = ServeEngine::new(cfg);
    let handles: Vec<_> = (0..8)
        .map(|k| {
            let job = sum_job(format!("j-{k}"), 300).with_monitor(HotnessMonitor::new);
            engine.try_submit(job).handle().unwrap()
        })
        .collect();
    for h in &handles {
        let out = h.wait();
        assert_eq!(out.stats.steals, 0);
        assert_eq!(out.stats.queue_depth_max, 0);
        assert_eq!(out.stats.slices_executed, 0);
        assert_eq!(out.stats.budget_throttles, 0);
        assert!(out.stats.probe_fires > 0, "the monitor really ran");
    }
    let summary = engine.shutdown();
    assert!(summary.stats.slices_executed >= 8);
    assert!(summary.stats.queue_depth_max >= 1);
}

#[test]
fn queue_depth_max_merges_as_high_water_mark() {
    let mut a = EngineStats { queue_depth_max: 7, steals: 2, ..EngineStats::default() };
    let b = EngineStats { queue_depth_max: 3, steals: 5, ..EngineStats::default() };
    a.merge(&b);
    assert_eq!(a.queue_depth_max, 7, "high-water marks take the max, not the sum");
    assert_eq!(a.steals, 7, "volume counters still add");
    let c = EngineStats { queue_depth_max: 11, ..EngineStats::default() };
    a.merge(&c);
    assert_eq!(a.queue_depth_max, 11);
}

#[test]
fn one_worker_throughput_not_worse_than_sequential_pool() {
    // The shard-scaling-inversion regression guard: a 1-worker serving
    // engine degrades to cooperative slicing and must stay in the same
    // ballpark as the old sequential (1-shard) pool on the same fleet —
    // scheduling machinery may not cost multiples.
    let fleet = || (0..8).map(|k| sum_job(format!("t-{k}"), 3_000)).collect::<Vec<_>>();
    let pool_wall = (0..3)
        .map(|_| {
            let mut pool = Pool::new(PoolConfig {
                shards: 1,
                engine: EngineConfig::builder().fuel_slice(2_000).build(),
            });
            for job in fleet() {
                pool.submit(job);
            }
            let t0 = Instant::now();
            let out = pool.run();
            assert!(out.all_ok());
            t0.elapsed()
        })
        .min()
        .unwrap();
    let serve_wall = (0..3)
        .map(|_| {
            let engine = ServeEngine::new(config(1, 2_000));
            let t0 = Instant::now();
            let handles: Vec<_> =
                fleet().into_iter().map(|j| engine.try_submit(j).handle().unwrap()).collect();
            for h in &handles {
                assert!(h.wait().status.is_ok());
            }
            let wall = t0.elapsed();
            engine.shutdown();
            wall
        })
        .min()
        .unwrap();
    assert!(
        serve_wall <= pool_wall * 2,
        "1-worker serving engine is >2x slower than the sequential pool \
         ({serve_wall:?} vs {pool_wall:?})"
    );
}
