//! Translation validation of the register lowering (byte ≡ register).
//!
//! [`crate::validator`] proves the byte→`Lowered` translation by effect
//! equality per slot; the register form cannot be checked that way — the
//! allocator *eliminates* instructions (`local.get`, consts fold into
//! consumers) and *moves* work (deferred operands materialize at flush
//! points), so there is no slot-per-instruction correspondence left.
//!
//! This module instead runs both representations **symbolically, in
//! lockstep, one basic block at a time**:
//!
//! * The byte side executes a stack machine over symbolic values; the
//!   register side executes the [`RInstr`] stream over a symbolic
//!   register file. Both start each block from the same fresh symbols
//!   (local `r` ↔ register `r`, stack slot `i` ↔ canonical register
//!   `num_slots + i`), so hash-consed structural equality decides value
//!   agreement.
//! * Every **observable** action — loads, stores, global accesses,
//!   memory ops, calls, branches, returns, traps — must appear on both
//!   sides at the same byte pc with symbolically equal operands. Reads
//!   of mutable state are numbered events, so ordering is part of the
//!   proof.
//! * At every **park point** (labels, loop headers, calls, taken branch
//!   edges) the canonical registers below the live height and all local
//!   registers must equal the byte side's stack and locals — exactly
//!   the invariant that makes a parked register frame indistinguishable
//!   from a stack frame for probes, fuel suspension, OSR, and deopt.
//!
//! Block-entry resets make the check per-block (no fixpoint): any path
//! reaching a label has, by the park rule, flushed to canonical form,
//! so a fresh-symbol state at the label covers all predecessors.
//!
//! The walker re-derives labels, branch targets, and dead regions from
//! the *validation side tables*, not from the allocator — it shares no
//! code with `regir`, which is the point.

use std::collections::HashMap;
use std::fmt;

use wizard_engine::regir::{
    RInstr, RegFunc, ARG_POOL_BIT, R_BIN, R_BIN_IR, R_BIN_RI, R_BR, R_BR_IF, R_BR_IF_Z, R_BR_TABLE,
    R_CALL, R_CALL_INDIRECT, R_CMP_BR, R_CMP_BR_RI, R_CONST, R_COPY, R_GLOBAL_GET, R_GLOBAL_SET,
    R_LOAD, R_LOOP, R_MEM_GROW, R_MEM_SIZE, R_RETURN, R_SELECT, R_STORE, R_UN, R_UNREACHABLE,
};
use wizard_engine::value::Slot;
use wizard_engine::ModuleArtifact;
use wizard_wasm::instr::{decode_at, Imm, Instr};
use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;
use wizard_wasm::types::FuncType;
use wizard_wasm::validate::{numeric_sig, FuncMeta, SideEntry, Target};

/// A byte→register translation defect, pinpointed to a function and
/// byte pc.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterMismatch {
    /// Global function index.
    pub func: FuncIdx,
    /// Byte offset of the offending instruction.
    pub pc: u32,
    /// What disagreed.
    pub msg: String,
}

impl fmt::Display for RegisterMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register-lowering mismatch in func {} at pc={}: {}",
            self.func, self.pc, self.msg
        )
    }
}

impl std::error::Error for RegisterMismatch {}

type SId = u32;

/// A symbolic value, hash-consed so equality is index equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SNode {
    /// Local `r` at function entry.
    Entry(u16),
    /// Local `r` at block entry `pc` (fresh per label).
    LabelLocal(u32, u16),
    /// Canonical stack slot `i` at block entry `pc`.
    LabelStack(u32, u32),
    /// A compile-time constant (slot bits).
    Const(u64),
    /// `binop(lhs, rhs)`.
    Bin(u8, SId, SId),
    /// `unop(a)`.
    Un(u8, SId),
    /// `cond != 0 ? v1 : v2`.
    Select(SId, SId, SId),
    /// The result of observable event number `k` (load, global read,
    /// memory query, call result) — mutable state reads are ordered.
    Ev(u32),
}

#[derive(Default)]
struct Arena {
    nodes: Vec<SNode>,
    map: HashMap<SNode, SId>,
}

impl Arena {
    fn intern(&mut self, n: SNode) -> SId {
        if let Some(&i) = self.map.get(&n) {
            return i;
        }
        let i = self.nodes.len() as SId;
        self.nodes.push(n.clone());
        self.map.insert(n, i);
        i
    }
}

/// An observable action with its symbolic operands.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Load { op: u8, offset: u32, addr: SId },
    Store { op: u8, offset: u32, addr: SId, val: SId },
    GlobalGet(u32),
    GlobalSet(u32, SId),
    MemSize,
    MemGrow(SId),
}

/// What the byte instruction at the current pc requires the register
/// interval to contain (beyond pure register writes).
enum Expected {
    /// An effectful non-control instruction; `results` are the event
    /// symbols its destination register must receive.
    Event(Event, Vec<SId>),
    /// A branch-shaped instruction; `rop` is the required `R_*` opcode.
    Branch {
        rop: u8,
        cond: Option<SId>,
        t: Target,
    },
    /// `br_table` with the index value and the side-table targets.
    Table {
        index: SId,
        ts: Vec<Target>,
    },
    /// `return`, carrying the result value if the function has one.
    Return {
        val: Option<SId>,
    },
    Unreachable,
    /// A loop header at byte pc `pc`, with `next` the pc after it.
    Loop {
        pc: u32,
        next: u32,
    },
    /// A call park point.
    Call {
        /// `Some((type_idx, index_sval))` for `call_indirect`.
        indirect: Option<(u32, SId)>,
        /// Callee function index (direct) — ignored for indirect.
        callee: u32,
        args: Vec<SId>,
        hb: usize,
        ret_pc: u32,
        results: Vec<SId>,
    },
}

struct V<'a> {
    func: FuncIdx,
    bytes: &'a [u8],
    meta: &'a FuncMeta,
    reg: &'a RegFunc,
    func_types: &'a [FuncType],
    types: &'a [FuncType],
    nres: usize,
    num_slots: usize,
    ar: Arena,
    /// Byte-side symbolic operand stack.
    stack: Vec<SId>,
    /// Byte-side symbolic locals.
    blocals: Vec<SId>,
    /// Register-side symbolic register file (`None` = dead/unwritten).
    regfile: Vec<Option<SId>>,
    /// Branch-target pc → required entry height (from the side tables).
    labels: HashMap<u32, u32>,
    ev: u32,
    /// Next register instruction to consume.
    cursor: usize,
    dead: bool,
}

impl<'a> V<'a> {
    fn fail<T>(&self, pc: u32, msg: impl Into<String>) -> Result<T, RegisterMismatch> {
        Err(RegisterMismatch { func: self.func, pc, msg: msg.into() })
    }

    fn temp(&self, i: usize) -> usize {
        self.num_slots + i
    }

    fn fresh_ev(&mut self) -> SId {
        let s = self.ar.intern(SNode::Ev(self.ev));
        self.ev += 1;
        s
    }

    fn r(&self, pc: u32, id: usize) -> Result<SId, RegisterMismatch> {
        match self.regfile.get(id) {
            Some(Some(s)) => Ok(*s),
            Some(None) => self.fail(pc, format!("register r{id} read while dead")),
            None => self.fail(pc, format!("register id r{id} out of range")),
        }
    }

    fn w(&mut self, pc: u32, id: usize, s: SId) -> Result<(), RegisterMismatch> {
        match self.regfile.get_mut(id) {
            Some(slot) => {
                *slot = Some(s);
                Ok(())
            }
            None => self.fail(pc, format!("register id r{id} out of range")),
        }
    }

    fn pop(&mut self, pc: u32) -> Result<SId, RegisterMismatch> {
        match self.stack.pop() {
            Some(s) => Ok(s),
            None => self.fail(pc, "byte-side operand stack underflow"),
        }
    }

    /// Canonical registers `0..upto` must mirror the byte stack — the
    /// park-point flush invariant.
    fn check_canonical(&self, pc: u32, upto: usize) -> Result<(), RegisterMismatch> {
        if self.stack.len() < upto {
            return self
                .fail(pc, format!("park needs height {upto}, stack is {}", self.stack.len()));
        }
        for (i, &want) in self.stack.iter().enumerate().take(upto) {
            let id = self.temp(i);
            if self.regfile.get(id).copied().flatten() != Some(want) {
                return self
                    .fail(pc, format!("canonical register r{id} (stack slot {i}) not flushed"));
            }
        }
        Ok(())
    }

    /// Local registers must mirror the byte locals at every park point.
    fn check_locals(&self, pc: u32) -> Result<(), RegisterMismatch> {
        for (r, &want) in self.blocals.iter().enumerate() {
            if self.regfile[r] != Some(want) {
                return self.fail(pc, format!("local register r{r} diverges from local {r}"));
            }
        }
        Ok(())
    }

    /// Enters the label at `pc`: verify the fall-through flush (when
    /// live), then reset both sides to the same fresh block symbols.
    fn label_entry(&mut self, pc: u32) -> Result<(), RegisterMismatch> {
        let entry = self.labels[&pc] as usize;
        if !self.dead {
            if self.stack.len() != entry {
                return self.fail(
                    pc,
                    format!(
                        "label entry height {entry} but fall-through height {}",
                        self.stack.len()
                    ),
                );
            }
            self.check_canonical(pc, entry)?;
            self.check_locals(pc)?;
        }
        self.dead = false;
        self.stack.clear();
        for r in 0..self.num_slots {
            let s = self.ar.intern(SNode::LabelLocal(pc, r as u16));
            self.blocals[r] = s;
            self.regfile[r] = Some(s);
        }
        for i in 0..entry {
            let s = self.ar.intern(SNode::LabelStack(pc, i as u32));
            self.stack.push(s);
            let id = self.temp(i);
            if id >= self.regfile.len() {
                return self.fail(pc, format!("label height {entry} exceeds the register file"));
            }
            self.regfile[id] = Some(s);
        }
        for slot in self.regfile.iter_mut().skip(self.num_slots + entry) {
            *slot = None;
        }
        Ok(())
    }

    fn side_target(&self, pc: u32) -> Result<Target, RegisterMismatch> {
        match self.meta.side.get(&pc) {
            Some(SideEntry::Br(t) | SideEntry::IfFalse(t) | SideEntry::ElseSkip(t)) => Ok(*t),
            other => self.fail(pc, format!("no branch side entry: {other:?}")),
        }
    }

    /// Executes one byte instruction symbolically; returns what the
    /// register interval must observably do.
    fn exec_byte(
        &mut self,
        instr: &Instr,
        next: usize,
    ) -> Result<Option<Expected>, RegisterMismatch> {
        let pc = instr.pc;
        let o = instr.op;
        Ok(match (o, &instr.imm) {
            (op::NOP | op::BLOCK | op::END, _) => None,
            (op::UNREACHABLE, _) => {
                self.dead = true;
                Some(Expected::Unreachable)
            }
            (op::LOOP, _) => Some(Expected::Loop { pc, next: next as u32 }),
            (op::IF, _) => {
                let cond = self.pop(pc)?;
                let t = self.side_target(pc)?;
                Some(Expected::Branch { rop: R_BR_IF_Z, cond: Some(cond), t })
            }
            (op::ELSE, _) => {
                let t = self.side_target(pc)?;
                self.dead = true;
                Some(Expected::Branch { rop: R_BR, cond: None, t })
            }
            (op::BR, _) => {
                let t = self.side_target(pc)?;
                self.dead = true;
                Some(Expected::Branch { rop: R_BR, cond: None, t })
            }
            (op::BR_IF, _) => {
                let cond = self.pop(pc)?;
                let t = self.side_target(pc)?;
                Some(Expected::Branch { rop: R_BR_IF, cond: Some(cond), t })
            }
            (op::BR_TABLE, _) => {
                let index = self.pop(pc)?;
                let ts = match self.meta.side.get(&pc) {
                    Some(SideEntry::Table(ts)) => ts.clone(),
                    other => return self.fail(pc, format!("no table side entry: {other:?}")),
                };
                self.dead = true;
                Some(Expected::Table { index, ts })
            }
            (op::RETURN, _) => {
                let val = if self.nres > 0 { Some(self.pop(pc)?) } else { None };
                self.dead = true;
                Some(Expected::Return { val })
            }
            (op::CALL, &Imm::Idx(f)) => {
                let ty = match self.func_types.get(f as usize) {
                    Some(ty) => ty.clone(),
                    None => return self.fail(pc, format!("callee {f} out of range")),
                };
                Some(self.call_expected(pc, next, None, f, &ty)?)
            }
            (op::CALL_INDIRECT, &Imm::CallIndirect { type_idx, .. }) => {
                let index = self.pop(pc)?;
                let ty = match self.types.get(type_idx as usize) {
                    Some(ty) => ty.clone(),
                    None => return self.fail(pc, format!("type {type_idx} out of range")),
                };
                Some(self.call_expected(pc, next, Some((type_idx, index)), 0, &ty)?)
            }
            (op::DROP, _) => {
                self.pop(pc)?;
                None
            }
            (op::SELECT, _) => {
                let c = self.pop(pc)?;
                let v2 = self.pop(pc)?;
                let v1 = self.pop(pc)?;
                let s = self.ar.intern(SNode::Select(c, v1, v2));
                self.stack.push(s);
                None
            }
            (op::LOCAL_GET, &Imm::Idx(x)) => {
                self.stack.push(self.blocals[x as usize]);
                None
            }
            (op::LOCAL_SET, &Imm::Idx(x)) => {
                let v = self.pop(pc)?;
                self.blocals[x as usize] = v;
                None
            }
            (op::LOCAL_TEE, &Imm::Idx(x)) => {
                let v = *self.stack.last().ok_or_else(|| RegisterMismatch {
                    func: self.func,
                    pc,
                    msg: "tee on empty stack".into(),
                })?;
                self.blocals[x as usize] = v;
                None
            }
            (op::GLOBAL_GET, &Imm::Idx(g)) => {
                let s = self.fresh_ev();
                self.stack.push(s);
                Some(Expected::Event(Event::GlobalGet(g), vec![s]))
            }
            (op::GLOBAL_SET, &Imm::Idx(g)) => {
                let v = self.pop(pc)?;
                Some(Expected::Event(Event::GlobalSet(g, v), vec![]))
            }
            (op::MEMORY_SIZE, _) => {
                let s = self.fresh_ev();
                self.stack.push(s);
                Some(Expected::Event(Event::MemSize, vec![s]))
            }
            (op::MEMORY_GROW, _) => {
                let pages = self.pop(pc)?;
                let s = self.fresh_ev();
                self.stack.push(s);
                Some(Expected::Event(Event::MemGrow(pages), vec![s]))
            }
            (op::I32_CONST, &Imm::I32(v)) => {
                let s = self.ar.intern(SNode::Const(Slot::from_i32(v).0));
                self.stack.push(s);
                None
            }
            (op::I64_CONST, &Imm::I64(v)) => {
                let s = self.ar.intern(SNode::Const(Slot::from_i64(v).0));
                self.stack.push(s);
                None
            }
            (op::F32_CONST, &Imm::F32(v)) => {
                let s = self.ar.intern(SNode::Const(Slot::from_f32(v).0));
                self.stack.push(s);
                None
            }
            (op::F64_CONST, &Imm::F64(v)) => {
                let s = self.ar.intern(SNode::Const(Slot::from_f64(v).0));
                self.stack.push(s);
                None
            }
            (o, &Imm::Mem { offset, .. }) if op::is_load(o) => {
                let addr = self.pop(pc)?;
                let s = self.fresh_ev();
                self.stack.push(s);
                Some(Expected::Event(Event::Load { op: o, offset, addr }, vec![s]))
            }
            (o, &Imm::Mem { offset, .. }) if op::is_store(o) => {
                let val = self.pop(pc)?;
                let addr = self.pop(pc)?;
                Some(Expected::Event(Event::Store { op: o, offset, addr, val }, vec![]))
            }
            (o, _) => match numeric_sig(o).map(|(p, _)| p.len()) {
                Some(2) => {
                    let rhs = self.pop(pc)?;
                    let lhs = self.pop(pc)?;
                    let s = self.ar.intern(SNode::Bin(o, lhs, rhs));
                    self.stack.push(s);
                    None
                }
                Some(1) => {
                    let a = self.pop(pc)?;
                    let s = self.ar.intern(SNode::Un(o, a));
                    self.stack.push(s);
                    None
                }
                _ => return self.fail(pc, format!("opcode {o:#04x} not modeled but lowered")),
            },
        })
    }

    fn call_expected(
        &mut self,
        pc: u32,
        next: usize,
        indirect: Option<(u32, SId)>,
        callee: u32,
        ty: &FuncType,
    ) -> Result<Expected, RegisterMismatch> {
        let nargs = ty.params.len();
        let hb = match self.stack.len().checked_sub(nargs) {
            Some(hb) => hb,
            None => return self.fail(pc, "call args exceed stack height"),
        };
        let args = self.stack[hb..].to_vec();
        self.stack.truncate(hb);
        let mut results = Vec::with_capacity(ty.results.len());
        for _ in 0..ty.results.len() {
            let s = self.fresh_ev();
            results.push(s);
            self.stack.push(s);
        }
        Ok(Expected::Call { indirect, callee, args, hb, ret_pc: next as u32, results })
    }

    /// Verifies a branch-shaped register instruction against the side
    /// table: opcode, condition, resolved target, carried-value shuffle,
    /// and the taken-edge park invariant.
    fn check_branch(
        &self,
        pc: u32,
        ri: RInstr,
        rop: u8,
        cond: Option<SId>,
        t: &Target,
    ) -> Result<(), RegisterMismatch> {
        if ri.op != rop {
            return self.fail(pc, format!("register op {} where branch op {rop} expected", ri.op));
        }
        if let Some(c) = cond {
            if self.r(pc, ri.dst as usize)? != c {
                return self.fail(pc, "branch condition diverges");
            }
        }
        if ri.x as usize != self.reg.idx_of(t.target_pc as usize) {
            return self.fail(
                pc,
                format!("branch resolves to instruction {} instead of pc {}", ri.x, t.target_pc),
            );
        }
        if u32::from(ri.y) != t.arity {
            return self
                .fail(pc, format!("branch carries {} values, side table says {}", ri.y, t.arity));
        }
        if t.arity == 1 {
            let kept = match self.stack.last() {
                Some(&s) => s,
                None => return self.fail(pc, "carried value but empty stack"),
            };
            if self.r(pc, ri.a as usize)? != kept {
                return self.fail(pc, "carried value diverges");
            }
            if ri.b as usize != self.temp(t.height as usize) {
                return self.fail(pc, "carried value lands off its canonical register");
            }
        }
        self.check_canonical(pc, t.height as usize)?;
        self.check_locals(pc)
    }

    /// Matches one effectful/control register instruction against the
    /// byte side's expectation for this pc.
    fn match_expected(
        &mut self,
        pc: u32,
        ri: RInstr,
        exp: Expected,
    ) -> Result<(), RegisterMismatch> {
        match exp {
            Expected::Event(ev, results) => {
                let got = match ri.op {
                    R_LOAD => {
                        Event::Load { op: ri.y, offset: ri.x, addr: self.r(pc, ri.a as usize)? }
                    }
                    R_STORE => Event::Store {
                        op: ri.y,
                        offset: ri.x,
                        addr: self.r(pc, ri.a as usize)?,
                        val: self.r(pc, ri.b as usize)?,
                    },
                    R_GLOBAL_GET => Event::GlobalGet(ri.x),
                    R_GLOBAL_SET => Event::GlobalSet(ri.x, self.r(pc, ri.a as usize)?),
                    R_MEM_SIZE => Event::MemSize,
                    R_MEM_GROW => Event::MemGrow(self.r(pc, ri.a as usize)?),
                    o => return self.fail(pc, format!("register op {o} where effect expected")),
                };
                if got != ev {
                    return self.fail(pc, format!("effect diverges: {got:?} != {ev:?}"));
                }
                if let Some(&s) = results.first() {
                    self.w(pc, ri.dst as usize, s)?;
                }
                Ok(())
            }
            Expected::Branch { rop, cond, t } => self.check_branch(pc, ri, rop, cond, &t),
            Expected::Table { index, ts } => {
                if ri.op != R_BR_TABLE {
                    return self.fail(pc, format!("register op {} where br_table expected", ri.op));
                }
                if self.r(pc, ri.dst as usize)? != index {
                    return self.fail(pc, "br_table index diverges");
                }
                let table = self.reg.table(ri.x);
                if table.len() != ts.len() {
                    return self.fail(
                        pc,
                        format!("table has {} entries, side table {}", table.len(), ts.len()),
                    );
                }
                for (e, t) in table.iter().zip(ts.iter()) {
                    if e.idx as usize != self.reg.idx_of(t.target_pc as usize) {
                        return self.fail(pc, format!("table entry misses pc {}", t.target_pc));
                    }
                    if u32::from(e.keep) != t.arity {
                        return self.fail(pc, "table entry arity diverges");
                    }
                    if t.arity == 1 {
                        let kept = match self.stack.last() {
                            Some(&s) => s,
                            None => return self.fail(pc, "carried value but empty stack"),
                        };
                        if self.r(pc, ri.a as usize)? != kept {
                            return self.fail(pc, "table carried value diverges");
                        }
                        if e.dst as usize != self.temp(t.height as usize) {
                            return self.fail(pc, "table carried value lands off-canonical");
                        }
                    }
                    self.check_canonical(pc, t.height as usize)?;
                }
                self.check_locals(pc)
            }
            Expected::Return { val } => {
                if ri.op != R_RETURN {
                    return self.fail(pc, format!("register op {} where return expected", ri.op));
                }
                if usize::from(ri.y) != self.nres {
                    return self
                        .fail(pc, format!("return carries {} results, not {}", ri.y, self.nres));
                }
                if let Some(v) = val {
                    if self.r(pc, ri.a as usize)? != v {
                        return self.fail(pc, "return value diverges");
                    }
                }
                Ok(())
            }
            Expected::Unreachable => {
                if ri.op != R_UNREACHABLE {
                    return self
                        .fail(pc, format!("register op {} where unreachable expected", ri.op));
                }
                Ok(())
            }
            Expected::Loop { pc: lpc, next } => {
                if ri.op != R_LOOP {
                    return self.fail(pc, format!("register op {} where loop expected", ri.op));
                }
                if usize::from(ri.dst) != self.stack.len() {
                    return self.fail(pc, "loop entry height diverges");
                }
                if ri.x != lpc || ri.z != u64::from(next) {
                    return self.fail(pc, "loop OSR pc annotations diverge");
                }
                self.check_canonical(pc, self.stack.len())?;
                self.check_locals(pc)
            }
            Expected::Call { indirect, callee, args, hb, ret_pc, results } => {
                match (&indirect, ri.op) {
                    (None, R_CALL) => {
                        if ri.x != callee {
                            return self.fail(pc, format!("call targets {} not {callee}", ri.x));
                        }
                    }
                    (Some((type_idx, index)), R_CALL_INDIRECT) => {
                        if ri.x != *type_idx {
                            return self.fail(pc, "call_indirect type index diverges");
                        }
                        if self.r(pc, ri.dst as usize)? != *index {
                            return self.fail(pc, "call_indirect element index diverges");
                        }
                    }
                    _ => {
                        return self.fail(pc, format!("register op {} where call expected", ri.op))
                    }
                }
                if ri.a as usize != hb || ri.b as usize != args.len() {
                    return self.fail(pc, "call frame geometry (hb/nargs) diverges");
                }
                if (ri.z >> 32) as u32 != ret_pc {
                    return self.fail(pc, "call return pc diverges");
                }
                let slice = self.reg.arg_slice((ri.z & 0xffff_ffff) as u32);
                if slice.len() != args.len() {
                    return self.fail(pc, "argument slice length diverges");
                }
                for (i, (&src, &want)) in slice.iter().zip(args.iter()).enumerate() {
                    let got = if src & ARG_POOL_BIT != 0 {
                        self.ar.intern(SNode::Const(self.reg.pool(src & !ARG_POOL_BIT)))
                    } else {
                        self.r(pc, src as usize)?
                    };
                    if got != want {
                        return self.fail(pc, format!("call argument {i} diverges"));
                    }
                }
                self.check_canonical(pc, hb)?;
                self.check_locals(pc)?;
                for (i, &s) in results.iter().enumerate() {
                    let id = self.temp(hb + i);
                    self.w(pc, id, s)?;
                }
                // The runtime truncates to the results on return and
                // zero-fills above: everything higher is dead.
                for slot in self.regfile.iter_mut().skip(self.num_slots + hb + results.len()) {
                    *slot = None;
                }
                Ok(())
            }
        }
    }

    /// A compare-and-branch with no byte-side branch at this pc: the
    /// fused `cmp; br_if` form. Verifies the condition against the cmp
    /// result just pushed, then the branch against the *next* byte
    /// instruction's side entry. Returns the fused-over `br_if` pc.
    fn check_fused(&mut self, pc: u32, next: usize, ri: RInstr) -> Result<u32, RegisterMismatch> {
        let cond = self.pop(pc)?;
        let (bri, _) = match decode_at(self.bytes, next) {
            Ok(v) => v,
            Err(e) => return self.fail(pc, format!("fused branch decode: {e:?}")),
        };
        if bri.op != op::BR_IF {
            return self.fail(pc, "compare-branch fuses over a non-br_if");
        }
        let t = self.side_target(bri.pc)?;
        if t.arity != 0 {
            return self.fail(pc, "fused branch carries values");
        }
        if self.labels.contains_key(&bri.pc) {
            return self.fail(pc, "fused over a branch-target br_if");
        }
        let lhs = self.r(pc, ri.a as usize)?;
        let rhs = if ri.op == R_CMP_BR_RI {
            self.ar.intern(SNode::Const(ri.z))
        } else {
            self.r(pc, ri.b as usize)?
        };
        if self.ar.intern(SNode::Bin(ri.y, lhs, rhs)) != cond {
            return self.fail(pc, "fused compare operands diverge");
        }
        if ri.x as usize != self.reg.idx_of(t.target_pc as usize) {
            return self.fail(pc, format!("fused branch misses pc {}", t.target_pc));
        }
        self.check_canonical(pc, t.height as usize)?;
        self.check_locals(pc)?;
        Ok(bri.pc)
    }

    /// Consumes every register instruction attributed to `[pc, next)`:
    /// pure writes evaluate into the register file, the (at most one)
    /// observable instruction must match `expected`. Returns the pc of
    /// a fused-over `br_if`, if this interval fused one.
    fn exec_interval(
        &mut self,
        pc: u32,
        next: usize,
        mut expected: Option<Expected>,
    ) -> Result<Option<u32>, RegisterMismatch> {
        let mut fused = None;
        while self.cursor < self.reg.len() && (self.reg.pc_of(self.cursor) as usize) < next {
            let ri = self.reg.get(self.cursor);
            self.cursor += 1;
            match ri.op {
                R_CONST => {
                    let s = self.ar.intern(SNode::Const(ri.z));
                    self.w(pc, ri.dst as usize, s)?;
                }
                R_COPY => {
                    let s = self.r(pc, ri.a as usize)?;
                    self.w(pc, ri.dst as usize, s)?;
                }
                R_BIN => {
                    let a = self.r(pc, ri.a as usize)?;
                    let b = self.r(pc, ri.b as usize)?;
                    let s = self.ar.intern(SNode::Bin(ri.y, a, b));
                    self.w(pc, ri.dst as usize, s)?;
                }
                R_BIN_RI => {
                    let a = self.r(pc, ri.a as usize)?;
                    let b = self.ar.intern(SNode::Const(ri.z));
                    let s = self.ar.intern(SNode::Bin(ri.y, a, b));
                    self.w(pc, ri.dst as usize, s)?;
                }
                R_BIN_IR => {
                    let a = self.ar.intern(SNode::Const(ri.z));
                    let b = self.r(pc, ri.b as usize)?;
                    let s = self.ar.intern(SNode::Bin(ri.y, a, b));
                    self.w(pc, ri.dst as usize, s)?;
                }
                R_UN => {
                    let a = self.r(pc, ri.a as usize)?;
                    let s = self.ar.intern(SNode::Un(ri.y, a));
                    self.w(pc, ri.dst as usize, s)?;
                }
                R_SELECT => {
                    let c = self.r(pc, ri.x as usize)?;
                    let v1 = self.r(pc, ri.a as usize)?;
                    let v2 = self.r(pc, ri.b as usize)?;
                    let s = self.ar.intern(SNode::Select(c, v1, v2));
                    self.w(pc, ri.dst as usize, s)?;
                }
                R_CMP_BR | R_CMP_BR_RI if expected.is_none() && fused.is_none() => {
                    fused = Some(self.check_fused(pc, next, ri)?);
                }
                _ => match expected.take() {
                    Some(exp) => self.match_expected(pc, ri, exp)?,
                    None => {
                        return self.fail(
                            pc,
                            format!("register op {} with no byte-side counterpart", ri.op),
                        )
                    }
                },
            }
        }
        if expected.is_some() {
            return self.fail(pc, "byte instruction has no register counterpart");
        }
        Ok(fused)
    }

    /// Structural checks on the pc maps: `idx_to_pc` non-decreasing and
    /// in range, `pc_to_idx` the exact forward map, and the body ends in
    /// the sentinel return.
    fn check_maps(&self) -> Result<(), RegisterMismatch> {
        let body_len = self.bytes.len();
        let mut prev = 0u32;
        for i in 0..self.reg.len() {
            let p = self.reg.pc_of(i);
            if p < prev || p as usize > body_len {
                return self.fail(p, format!("instruction {i}: pc map not monotone"));
            }
            prev = p;
        }
        let mut idx = 0usize;
        for pc in 0..=body_len {
            while idx < self.reg.len() && (self.reg.pc_of(idx) as usize) < pc {
                idx += 1;
            }
            if self.reg.idx_of(pc) != idx {
                return self.fail(pc as u32, "forward pc map is not the lower bound");
            }
        }
        let last = match self.reg.len().checked_sub(1) {
            Some(l) => l,
            None => return self.fail(0, "empty register stream"),
        };
        let fin = self.reg.get(last);
        if fin.op != R_RETURN || self.reg.pc_of(last) as usize != body_len {
            return self.fail(body_len as u32, "body does not end in the sentinel return");
        }
        Ok(())
    }

    fn run(&mut self) -> Result<(), RegisterMismatch> {
        self.check_maps()?;
        let body_len = self.bytes.len();
        let mut pos = 0usize;
        let mut skip_pc: Option<u32> = None;
        while pos < body_len {
            let (instr, next) = match decode_at(self.bytes, pos) {
                Ok(v) => v,
                Err(e) => return self.fail(e.pc, format!("bytes do not decode: {e:?}")),
            };
            let pc = instr.pc;
            if self.labels.contains_key(&pc) {
                self.label_entry(pc)?;
            }
            if skip_pc == Some(pc) {
                // The fused-over br_if: already verified; its interval
                // may still hold flush copies for a following label.
                skip_pc = None;
                self.exec_interval(pc, next, None)?;
                pos = next;
                continue;
            }
            if self.dead {
                if self.cursor < self.reg.len() && (self.reg.pc_of(self.cursor) as usize) < next {
                    return self.fail(pc, "register instructions attributed to dead code");
                }
                pos = next;
                continue;
            }
            let expected = self.exec_byte(&instr, next)?;
            if let Some(fpc) = self.exec_interval(pc, next, expected)? {
                skip_pc = Some(fpc);
            }
            pos = next;
        }

        // The sentinel return: a branch to the function's end lands
        // here; fall-through must leave exactly the results flushed.
        if let Some(&entry) = self.labels.get(&(body_len as u32)).filter(|_| self.dead) {
            let _ = entry;
            self.label_entry(body_len as u32)?;
        }
        let fin = self.reg.get(self.reg.len() - 1);
        if !self.dead {
            if self.stack.len() != self.nres {
                return self.fail(
                    body_len as u32,
                    format!("fall-through height {} but {} results", self.stack.len(), self.nres),
                );
            }
            let val = if self.nres > 0 { Some(self.stack[0]) } else { None };
            self.match_expected(body_len as u32, fin, Expected::Return { val })?;
        }
        if self.cursor != self.reg.len() - 1 {
            return self.fail(
                body_len as u32,
                format!(
                    "{} register instructions left unconsumed",
                    self.reg.len() - 1 - self.cursor
                ),
            );
        }
        Ok(())
    }
}

/// Collects branch-target pcs with their entry heights from the side
/// tables (independently of the allocator's own label pass).
fn collect_labels(func: FuncIdx, meta: &FuncMeta) -> Result<HashMap<u32, u32>, RegisterMismatch> {
    let mut labels = HashMap::new();
    let mut add = |t: &Target| -> Result<(), RegisterMismatch> {
        let entry = t.height + t.arity;
        match labels.insert(t.target_pc, entry) {
            Some(prev) if prev != entry => Err(RegisterMismatch {
                func,
                pc: t.target_pc,
                msg: format!("conflicting label heights {prev} and {entry}"),
            }),
            _ => Ok(()),
        }
    };
    for e in meta.side.values() {
        match e {
            SideEntry::Br(t) | SideEntry::IfFalse(t) | SideEntry::ElseSkip(t) => add(t)?,
            SideEntry::Table(ts) => {
                for t in ts {
                    add(t)?;
                }
            }
        }
    }
    Ok(labels)
}

/// Validates the register lowering of one function body against its
/// bytes: symbolic lockstep execution per basic block (see the module
/// docs for the proof obligations).
pub fn validate_func_register(
    func: FuncIdx,
    bytes: &[u8],
    meta: &FuncMeta,
    num_results: usize,
    func_types: &[FuncType],
    types: &[FuncType],
    reg: &RegFunc,
) -> Result<(), RegisterMismatch> {
    if u32::from(reg.num_slots()) != meta.num_slots {
        return Err(RegisterMismatch {
            func,
            pc: 0,
            msg: format!("{} local registers but {} slots", reg.num_slots(), meta.num_slots),
        });
    }
    let num_slots = meta.num_slots as usize;
    let labels = collect_labels(func, meta)?;
    let mut ar = Arena::default();
    let blocals: Vec<SId> = (0..num_slots).map(|r| ar.intern(SNode::Entry(r as u16))).collect();
    let mut regfile: Vec<Option<SId>> = blocals.iter().map(|&s| Some(s)).collect();
    regfile.resize(num_slots + reg.num_temps() as usize, None);
    let mut v = V {
        func,
        bytes,
        meta,
        reg,
        func_types,
        types,
        nres: num_results,
        num_slots,
        ar,
        stack: Vec::new(),
        blocals,
        regfile,
        labels,
        ev: 0,
        cursor: 0,
        dead: false,
    };
    v.run()
}

/// Validates the register lowering of every function the allocator
/// lowered, if the module's register form has been built (a no-op for
/// engines that never select register dispatch).
pub fn validate_register_lowering(artifact: &ModuleArtifact) -> Result<(), RegisterMismatch> {
    let Some(regm) = artifact.reg_module_built() else { return Ok(()) };
    let func_types = artifact.func_types();
    let types = &artifact.module().types;
    for (lf, fa) in artifact.funcs().iter().enumerate() {
        if let Some(rf) = regm.func(lf) {
            validate_func_register(
                fa.func,
                &fa.bytes,
                &fa.meta,
                fa.num_results as usize,
                func_types,
                types,
                rf,
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn module_for(f: FuncBuilder) -> wizard_wasm::module::Module {
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        mb.build().expect("validates")
    }

    fn artifact_for(f: FuncBuilder) -> ModuleArtifact {
        let a = ModuleArtifact::new(module_for(f)).expect("validates");
        let _ = a.reg_module();
        a
    }

    #[test]
    fn straight_line_register_form_validates() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(1).i32_add();
        let a = artifact_for(f);
        assert_eq!(a.reg_module().lowered_count, 1);
        validate_register_lowering(&a).expect("register form is faithful");
    }

    #[test]
    fn fused_loops_validate_and_exercise_cmp_br() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        let a = artifact_for(f);
        let rf = a.reg_module().func(0).expect("lowers").clone();
        let fused = rf.ops().iter().any(|ri| matches!(ri.op, R_CMP_BR | R_CMP_BR_RI));
        assert!(fused, "loop backedge should fuse to a compare-and-branch");
        validate_register_lowering(&a).expect("fused register form is faithful");
    }

    #[test]
    fn all_suite_kernels_validate() {
        for b in wizard_suites::all_suites(wizard_suites::Scale::Test) {
            let a = ModuleArtifact::new(b.module).expect("kernel validates");
            let _ = a.reg_module();
            if let Err(e) = validate_register_lowering(&a) {
                panic!("{}/{}: {e}", b.suite, b.name);
            }
        }
    }

    #[test]
    fn corrupted_const_payload_is_rejected() {
        // Lower a body differing in one const payload, then validate
        // that register form against the *original* bytes.
        let build = |c: i32| {
            let mut f = FuncBuilder::new(&[I32], &[I32]);
            f.local_get(0).i32_const(c).i32_add();
            artifact_for(f)
        };
        let original = build(5);
        let tampered = build(6);
        let rf = tampered.reg_module().func(0).expect("lowers").clone();
        let fa = &original.funcs()[0];
        let err = validate_func_register(
            fa.func,
            &fa.bytes,
            &fa.meta,
            fa.num_results as usize,
            original.func_types(),
            &original.module().types,
            &rf,
        )
        .expect_err("corrupted stream must be rejected");
        assert_eq!(err.func, 0);
        let shown = err.to_string();
        assert!(shown.contains("func 0"), "diagnostic: {shown}");
    }

    #[test]
    fn wrong_branch_target_is_rejected() {
        // A loop summing down vs. a body without the loop: lowering one
        // against the other's bytes must fail fast.
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |_| {});
        f.local_get(0);
        let looped = artifact_for(f);

        let mut g = FuncBuilder::new(&[I32], &[I32]);
        g.local_get(0);
        let plain = artifact_for(g);

        let rf = plain.reg_module().func(0).expect("lowers").clone();
        let fa = &looped.funcs()[0];
        validate_func_register(
            fa.func,
            &fa.bytes,
            &fa.meta,
            fa.num_results as usize,
            looped.func_types(),
            &looped.module().types,
            &rf,
        )
        .expect_err("mismatched control flow must be rejected");
    }
}
