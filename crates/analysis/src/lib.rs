//! Static analysis for the Wizard engine: CFG/dataflow over decoded
//! function bodies, a translation validator for the lowered pipeline,
//! and lint passes built on the same facts.
//!
//! The crate has three layers:
//!
//! - [`mod@cfg`] + [`dataflow`]: basic blocks from the validator's branch
//!   side tables, reverse-postorder worklist iteration, and a generic
//!   forward abstract-interpretation driver with stock domains for
//!   constancy ([`dataflow::ConstDomain`]) and stack shape/types
//!   ([`dataflow::TypeDomain`]); reachability falls out of the driver.
//! - [`validator`]: [`validate_lowering`] statically proves the
//!   pre-decoded `LInstr` stream equivalent to the bytecode it was
//!   lowered from — effect equality per slot (fused superinstructions
//!   decomposed independently), pc↔slot bijectivity, fusion legality.
//!   [`regvalidator`] extends the proof to the register tier:
//!   [`validate_register_lowering`] runs the byte form and the
//!   register form symbolically in lockstep per basic block and
//!   requires equal observable effects plus the park-point flush
//!   invariant at every label, loop header, call, and taken branch.
//! - Consumers: [`facts::ModuleFacts`] packages per-site constancy /
//!   reachability for wizard-script's probe lowering, and [`lint`]
//!   reports dead code, foldable ops, and redundant get/set pairs.

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod facts;
pub mod lint;
pub mod regvalidator;
pub mod validator;

pub use facts::{FuncFacts, ModuleFacts, TosFact};
pub use lint::{lint_module, LintFinding, LintKind};
pub use regvalidator::{validate_func_register, validate_register_lowering, RegisterMismatch};
pub use validator::{validate_func_lowering, validate_lowering, LoweringMismatch};

/// Registers [`validate_lowering`] as the engine's lowering validator,
/// enabling `EngineConfig::builder().validate_lowering(true)` to check
/// every instantiation. When the module's register form has been built
/// (register-dispatch processes build it eagerly, before this hook
/// runs), [`validate_register_lowering`] rides along and proves the
/// byte ≡ register translation too. Idempotent; safe to call from
/// tests and mains.
pub fn install_engine_validator() {
    wizard_engine::register_lowering_validator(|artifact| {
        validate_lowering(artifact).map_err(|e| e.to_string())?;
        validate_register_lowering(artifact).map_err(|e| e.to_string())
    });
}
