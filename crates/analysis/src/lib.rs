//! Static analysis for the Wizard engine: CFG/dataflow over decoded
//! function bodies, a translation validator for the lowered pipeline,
//! and lint passes built on the same facts.
//!
//! The crate has three layers:
//!
//! - [`mod@cfg`] + [`dataflow`]: basic blocks from the validator's branch
//!   side tables, reverse-postorder worklist iteration, and a generic
//!   forward abstract-interpretation driver with stock domains for
//!   constancy ([`dataflow::ConstDomain`]) and stack shape/types
//!   ([`dataflow::TypeDomain`]); reachability falls out of the driver.
//! - [`validator`]: [`validate_lowering`] statically proves the
//!   pre-decoded `LInstr` stream equivalent to the bytecode it was
//!   lowered from — effect equality per slot (fused superinstructions
//!   decomposed independently), pc↔slot bijectivity, fusion legality.
//! - Consumers: [`facts::ModuleFacts`] packages per-site constancy /
//!   reachability for wizard-script's probe lowering, and [`lint`]
//!   reports dead code, foldable ops, and redundant get/set pairs.

#![warn(missing_docs)]

pub mod cfg;
pub mod dataflow;
pub mod facts;
pub mod lint;
pub mod validator;

pub use facts::{FuncFacts, ModuleFacts, TosFact};
pub use lint::{lint_module, LintFinding, LintKind};
pub use validator::{validate_func_lowering, validate_lowering, LoweringMismatch};

/// Registers [`validate_lowering`] as the engine's lowering validator,
/// enabling `EngineConfig::builder().validate_lowering(true)` to check
/// every instantiation. Idempotent; safe to call from tests and mains.
pub fn install_engine_validator() {
    wizard_engine::register_lowering_validator(|artifact| {
        validate_lowering(artifact).map_err(|e| e.to_string())
    });
}
