//! Per-site dataflow facts packaged for probe-lowering consumers.
//!
//! A probe fires *before* its instruction, so the interesting fact at a
//! site is the abstract state of the operand stack at the instruction
//! boundary: is the site reachable at all, is the stack empty (so `tos`
//! reads as zero), or is the top of stack a compile-time constant?

use std::collections::HashMap;

use wizard_wasm::module::FuncIdx;
use wizard_wasm::module::Module;
use wizard_wasm::validate::validate;

use crate::cfg::Cfg;
use crate::dataflow::{analyze, AbsConst, ConstDomain};

/// What is statically known about the operand stack immediately before
/// one instruction (i.e. at the point a probe at that pc would fire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TosFact {
    /// The instruction is statically unreachable.
    Unreachable,
    /// The operand stack is empty here on every execution.
    Empty,
    /// The top of stack is always this slot bit pattern.
    Const(u64),
    /// Nothing useful is known.
    #[default]
    Unknown,
}

/// Facts for every instruction boundary of one function.
#[derive(Debug, Clone, Default)]
pub struct FuncFacts {
    /// Fact per pc (byte offset of the opcode).
    pub by_pc: HashMap<u32, TosFact>,
}

impl FuncFacts {
    /// The fact at `pc`, defaulting to [`TosFact::Unknown`] for pcs the
    /// analysis did not see (e.g. non-boundary offsets).
    pub fn at(&self, pc: u32) -> TosFact {
        self.by_pc.get(&pc).copied().unwrap_or(TosFact::Unknown)
    }
}

/// Constancy/reachability facts for every local function of a module.
#[derive(Debug, Clone, Default)]
pub struct ModuleFacts {
    /// Facts keyed by *global* function index (imports have none).
    pub funcs: HashMap<FuncIdx, FuncFacts>,
}

impl ModuleFacts {
    /// Runs the constancy analysis over every local function.
    ///
    /// # Panics
    ///
    /// Panics if the module does not validate — callers hold modules
    /// that already passed validation.
    pub fn compute(module: &Module) -> ModuleFacts {
        let meta = validate(module).expect("module was validated");
        let n_imp = module.num_imported_funcs();
        let mut funcs = HashMap::new();
        for (i, decl) in module.funcs.iter().enumerate() {
            let fm = &meta.funcs[i];
            let cfg = Cfg::build(&decl.body.code, fm);
            let fty = &module.types[decl.type_idx as usize];
            let mut local_types = fty.params.clone();
            local_types.extend(decl.body.flat_locals());
            let fa = analyze(&cfg, module, &ConstDomain, &local_types, fty.params.len());
            let mut by_pc = HashMap::new();
            fa.for_each_instr(&cfg, module, &ConstDomain, |ins, st| {
                let fact = match st {
                    None => TosFact::Unreachable,
                    Some(s) => match s.stack.last() {
                        None => TosFact::Empty,
                        Some(AbsConst::Const(bits)) => TosFact::Const(*bits),
                        Some(AbsConst::Unknown) => TosFact::Unknown,
                    },
                };
                by_pc.insert(ins.pc, fact);
            });
            funcs.insert(n_imp + i as u32, FuncFacts { by_pc });
        }
        ModuleFacts { funcs }
    }

    /// The fact at `(func, pc)`; [`TosFact::Unknown`] for unknown sites.
    pub fn at(&self, func: FuncIdx, pc: u32) -> TosFact {
        self.funcs.get(&func).map_or(TosFact::Unknown, |f| f.at(pc))
    }

    /// Loop-header pcs of `func` as discovered by CFG back-edge
    /// detection (used for parity checks against the validator's
    /// syntactic `loop_headers`).
    pub fn cfg_loop_headers(module: &Module, local_index: usize) -> Vec<u32> {
        let meta = validate(module).expect("module was validated");
        let decl = &module.funcs[local_index];
        Cfg::build(&decl.body.code, &meta.funcs[local_index]).loop_headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::instr::InstrIter;
    use wizard_wasm::opcodes as op;
    use wizard_wasm::types::ValType::I32;

    #[test]
    fn facts_classify_empty_const_and_unknown() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.i32_const(5); // stack empty before this
        f.local_get(0); // tos == Const(5) before this
        f.i32_add(); // tos unknown (param) before this
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        let m = mb.build().expect("validates");
        let facts = ModuleFacts::compute(&m);
        let pcs: Vec<u32> =
            InstrIter::new(&m.funcs[0].body.code).map(|i| i.expect("decodes").pc).collect();
        assert_eq!(facts.at(0, pcs[0]), TosFact::Empty);
        assert_eq!(facts.at(0, pcs[1]), TosFact::Const(5));
        assert_eq!(facts.at(0, pcs[2]), TosFact::Unknown);
    }

    #[test]
    fn dead_code_is_unreachable() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).return_();
        f.i32_const(9);
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        let m = mb.build().expect("validates");
        let facts = ModuleFacts::compute(&m);
        let dead_pc = InstrIter::new(&m.funcs[0].body.code)
            .map(|i| i.expect("decodes"))
            .find(|i| i.op == op::I32_CONST)
            .expect("const present")
            .pc;
        assert_eq!(facts.at(0, dead_pc), TosFact::Unreachable);
    }
}
