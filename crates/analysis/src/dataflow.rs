//! Generic forward abstract interpretation over a [`Cfg`].
//!
//! The driver owns the structural part of every analysis — decoding,
//! stack bookkeeping via the validator's signature tables
//! ([`numeric_sig`], [`mem_access_type`]), block-edge stack surgery via
//! side-table targets, and worklist iteration in reverse postorder.
//! A [`Domain`] supplies only the lattice: how values join, what a
//! constant is, and what a pure numeric op does to abstract operands.
//!
//! Reachability is not a separate domain: a block whose entry state is
//! still `None` at fixpoint was never reached from the function entry.

use wizard_engine::numeric;
use wizard_engine::value::Slot;
use wizard_wasm::instr::{Imm, Instr};
use wizard_wasm::module::Module;
use wizard_wasm::opcodes as op;
use wizard_wasm::types::ValType;
use wizard_wasm::validate::{mem_access_type, numeric_sig, Target};

use crate::cfg::Cfg;

/// An abstract-value lattice plus transfer functions for value-producing
/// instructions. Everything structural (stack depths, edge arities,
/// iteration order) lives in the driver.
pub trait Domain {
    /// The abstract value.
    type V: Clone + PartialEq;

    /// The no-information element.
    fn top(&self) -> Self::V;

    /// Least upper bound of two abstract values.
    fn join(&self, a: &Self::V, b: &Self::V) -> Self::V;

    /// Abstract value of a `*.const` instruction.
    fn constant(&self, op: u8, imm: &Imm) -> Self::V;

    /// Initial abstract value of a local. Wasm zero-initialises declared
    /// locals, so non-param locals may be treated as constants.
    fn local_init(&self, ty: ValType, is_param: bool) -> Self::V;

    /// Result of a pure numeric op over abstract operands (in push
    /// order: `args[0]` is deepest).
    fn numeric(&self, op: u8, args: &[Self::V]) -> Self::V;

    /// A value of statically-known type but unknown content (loads,
    /// globals, call results, `memory.size`).
    fn of_type(&self, ty: ValType) -> Self::V;
}

/// Abstract machine state at an instruction boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct State<V> {
    /// Operand stack, bottom first.
    pub stack: Vec<V>,
    /// All locals: params then declared locals.
    pub locals: Vec<V>,
}

/// Fixpoint result of running a [`Domain`] over one function.
pub struct FuncAnalysis<V> {
    /// Entry state of each block; `None` means statically unreachable.
    pub block_entry: Vec<Option<State<V>>>,
}

/// Runs `domain` to fixpoint over `cfg` and returns per-block entry
/// states. `local_types` must cover params and declared locals;
/// `num_params` says how many are params.
pub fn analyze<D: Domain>(
    cfg: &Cfg,
    module: &Module,
    domain: &D,
    local_types: &[ValType],
    num_params: usize,
) -> FuncAnalysis<D::V> {
    let mut block_entry: Vec<Option<State<D::V>>> = vec![None; cfg.blocks.len()];
    let entry = State {
        stack: Vec::new(),
        locals: local_types
            .iter()
            .enumerate()
            .map(|(i, &t)| domain.local_init(t, i < num_params))
            .collect(),
    };
    block_entry[*cfg.rpo.first().unwrap_or(&0)] = Some(entry);

    let mut rpo_num = vec![usize::MAX; cfg.blocks.len()];
    for (n, &b) in cfg.rpo.iter().enumerate() {
        rpo_num[b] = n;
    }
    let mut in_list = vec![false; cfg.blocks.len()];
    let mut worklist: Vec<usize> = cfg.rpo.clone();
    worklist.reverse(); // pop() yields RPO order
    for &b in &worklist {
        in_list[b] = true;
    }

    while let Some(b) = worklist.pop() {
        in_list[b] = false;
        let Some(entry) = block_entry[b].clone() else { continue };
        let mut st = entry;
        for i in cfg.blocks[b].start..cfg.blocks[b].end {
            transfer(domain, module, &cfg.instrs[i], &mut st);
        }
        for e in &cfg.blocks[b].succs.clone() {
            let mut out = st.clone();
            if let Some(t) = e.target {
                apply_target(&mut out, &t);
            }
            let changed = match &mut block_entry[e.block] {
                Some(old) => join_into(domain, old, &out),
                slot @ None => {
                    *slot = Some(out);
                    true
                }
            };
            if changed && !in_list[e.block] {
                in_list[e.block] = true;
                // Keep the worklist roughly RPO-sorted: push, then let
                // pops reprocess; correctness only needs termination.
                worklist.push(e.block);
                worklist.sort_unstable_by_key(|&x| std::cmp::Reverse(rpo_num[x]));
            }
        }
    }

    FuncAnalysis { block_entry }
}

impl<V: Clone + PartialEq> FuncAnalysis<V> {
    /// Replays reachable blocks from their entry states, calling `f`
    /// with each instruction and the abstract state *before* it
    /// (`None` for statically-unreachable instructions).
    pub fn for_each_instr<D: Domain<V = V>>(
        &self,
        cfg: &Cfg,
        module: &Module,
        domain: &D,
        mut f: impl FnMut(&Instr, Option<&State<V>>),
    ) {
        for (b, blk) in cfg.blocks.iter().enumerate() {
            match &self.block_entry[b] {
                None => {
                    for i in blk.start..blk.end {
                        f(&cfg.instrs[i], None);
                    }
                }
                Some(entry) => {
                    let mut st = entry.clone();
                    for i in blk.start..blk.end {
                        f(&cfg.instrs[i], Some(&st));
                        transfer(domain, module, &cfg.instrs[i], &mut st);
                    }
                }
            }
        }
    }
}

/// Branch-edge stack surgery: keep the top `arity` values, truncate the
/// rest to the target's recorded height, re-push the kept values.
fn apply_target<V: Clone>(st: &mut State<V>, t: &Target) {
    let arity = (t.arity as usize).min(st.stack.len());
    let kept: Vec<V> = st.stack.split_off(st.stack.len() - arity);
    st.stack.truncate(t.height as usize);
    st.stack.extend(kept);
}

/// Joins `new` into `old`; returns `true` if `old` changed.
fn join_into<D: Domain>(domain: &D, old: &mut State<D::V>, new: &State<D::V>) -> bool {
    let mut changed = false;
    // Validated code has equal stack heights at merge points; clamp
    // defensively anyway.
    if old.stack.len() != new.stack.len() {
        let n = old.stack.len().min(new.stack.len());
        old.stack.truncate(n);
        changed = true;
    }
    for (o, n) in old.stack.iter_mut().zip(&new.stack) {
        let j = domain.join(o, n);
        if j != *o {
            *o = j;
            changed = true;
        }
    }
    for (o, n) in old.locals.iter_mut().zip(&new.locals) {
        let j = domain.join(o, n);
        if j != *o {
            *o = j;
            changed = true;
        }
    }
    changed
}

/// Pops `n` values (defensively tolerating underflow on malformed input).
fn popn<V>(st: &mut State<V>, n: usize) -> Vec<V> {
    let n = n.min(st.stack.len());
    st.stack.split_off(st.stack.len() - n)
}

/// The single-instruction transfer function. Stack arity comes from the
/// validator's own signature tables, so the analysis cannot drift from
/// what validation accepted.
pub fn transfer<D: Domain>(domain: &D, module: &Module, ins: &Instr, st: &mut State<D::V>) {
    match ins.op {
        op::NOP
        | op::BLOCK
        | op::LOOP
        | op::END
        | op::BR
        | op::ELSE
        | op::RETURN
        | op::UNREACHABLE => {}
        op::IF | op::BR_IF | op::BR_TABLE => {
            popn(st, 1);
        }
        op::DROP => {
            popn(st, 1);
        }
        op::SELECT => {
            let mut args = popn(st, 3);
            let _cond = args.pop();
            let b = args.pop();
            let a = args.pop();
            st.stack.push(match (a, b) {
                (Some(a), Some(b)) => domain.join(&a, &b),
                _ => domain.top(),
            });
        }
        op::LOCAL_GET => {
            if let Imm::Idx(i) = ins.imm {
                let v = st.locals.get(i as usize).cloned().unwrap_or_else(|| domain.top());
                st.stack.push(v);
            }
        }
        op::LOCAL_SET => {
            if let Imm::Idx(i) = ins.imm {
                if let Some(v) = popn(st, 1).pop() {
                    if let Some(l) = st.locals.get_mut(i as usize) {
                        *l = v;
                    }
                }
            }
        }
        op::LOCAL_TEE => {
            if let Imm::Idx(i) = ins.imm {
                if let (Some(v), Some(l)) =
                    (st.stack.last().cloned(), st.locals.get_mut(i as usize))
                {
                    *l = v;
                }
            }
        }
        op::GLOBAL_GET => {
            let ty = match ins.imm {
                Imm::Idx(i) => module.globals.get(i as usize).map(|g| g.ty.value),
                _ => None,
            };
            st.stack.push(ty.map_or_else(|| domain.top(), |t| domain.of_type(t)));
        }
        op::GLOBAL_SET => {
            popn(st, 1);
        }
        op::I32_LOAD..=op::I64_LOAD32_U => {
            popn(st, 1);
            let (ty, _, _) = mem_access_type(ins.op);
            st.stack.push(domain.of_type(ty));
        }
        op::I32_STORE..=op::I64_STORE32 => {
            popn(st, 2);
        }
        op::MEMORY_SIZE => st.stack.push(domain.of_type(ValType::I32)),
        op::MEMORY_GROW => {
            popn(st, 1);
            st.stack.push(domain.of_type(ValType::I32));
        }
        op::I32_CONST..=op::F64_CONST => st.stack.push(domain.constant(ins.op, &ins.imm)),
        op::CALL | op::CALL_INDIRECT => {
            let (fty, extra) = match ins.imm {
                Imm::Idx(f) => (module.func_type(f), 0),
                Imm::CallIndirect { type_idx, .. } => (module.types.get(type_idx as usize), 1),
                _ => (None, 0),
            };
            if let Some(fty) = fty {
                popn(st, fty.params.len() + extra);
                for &r in &fty.results {
                    st.stack.push(domain.of_type(r));
                }
            }
        }
        o => {
            if let Some((params, result)) = numeric_sig(o) {
                let args = popn(st, params.len());
                if result.is_some() {
                    st.stack.push(domain.numeric(o, &args));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Stock domains
// ---------------------------------------------------------------------------

/// Abstract value of the constancy domain: a known 64-bit slot pattern
/// or no information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsConst {
    /// The value is this exact slot bit pattern on every execution.
    Const(u64),
    /// Anything.
    Unknown,
}

/// Constant propagation through `const`/`local.get`/`local.set` and
/// pure numeric ops, folded with the engine's own [`numeric`] kernels so
/// analysis results bit-match execution.
pub struct ConstDomain;

impl Domain for ConstDomain {
    type V = AbsConst;

    fn top(&self) -> AbsConst {
        AbsConst::Unknown
    }

    fn join(&self, a: &AbsConst, b: &AbsConst) -> AbsConst {
        if a == b {
            *a
        } else {
            AbsConst::Unknown
        }
    }

    fn constant(&self, _op: u8, imm: &Imm) -> AbsConst {
        match *imm {
            Imm::I32(v) => AbsConst::Const(Slot::from_i32(v).0),
            Imm::I64(v) => AbsConst::Const(Slot::from_i64(v).0),
            Imm::F32(v) => AbsConst::Const(Slot::from_f32(v).0),
            Imm::F64(v) => AbsConst::Const(Slot::from_f64(v).0),
            _ => AbsConst::Unknown,
        }
    }

    fn local_init(&self, _ty: ValType, is_param: bool) -> AbsConst {
        // Declared locals are zero-initialised by the spec; params are
        // caller-controlled.
        if is_param {
            AbsConst::Unknown
        } else {
            AbsConst::Const(0)
        }
    }

    fn numeric(&self, o: u8, args: &[AbsConst]) -> AbsConst {
        let slot = |v: &AbsConst| match v {
            AbsConst::Const(bits) => Some(Slot(*bits)),
            AbsConst::Unknown => None,
        };
        let folded = match args {
            [a] if numeric::is_unop(o) => slot(a).map(|a| numeric::unop(o, a)),
            [a, b] if numeric::is_binop(o) => {
                slot(a).zip(slot(b)).map(|(a, b)| numeric::binop(o, a, b))
            }
            _ => None,
        };
        match folded {
            // A folding that traps is not a constant — the instruction
            // never produces a value there.
            Some(Ok(v)) => AbsConst::Const(v.0),
            _ => AbsConst::Unknown,
        }
    }

    fn of_type(&self, _ty: ValType) -> AbsConst {
        AbsConst::Unknown
    }
}

/// Stack shape/type domain: tracks the [`ValType`] of every stack slot
/// (`None` = type unknown, only possible in unreachable-adjacent code).
pub struct TypeDomain;

impl Domain for TypeDomain {
    type V = Option<ValType>;

    fn top(&self) -> Option<ValType> {
        None
    }

    fn join(&self, a: &Option<ValType>, b: &Option<ValType>) -> Option<ValType> {
        if a == b {
            *a
        } else {
            None
        }
    }

    fn constant(&self, o: u8, _imm: &Imm) -> Option<ValType> {
        Some(match o {
            op::I32_CONST => ValType::I32,
            op::I64_CONST => ValType::I64,
            op::F32_CONST => ValType::F32,
            _ => ValType::F64,
        })
    }

    fn local_init(&self, ty: ValType, _is_param: bool) -> Option<ValType> {
        Some(ty)
    }

    fn numeric(&self, o: u8, _args: &[Option<ValType>]) -> Option<ValType> {
        numeric_sig(o).and_then(|(_, r)| r)
    }

    fn of_type(&self, ty: ValType) -> Option<ValType> {
        Some(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;
    use wizard_wasm::validate::{validate, FuncMeta};

    fn analyze_first<D: Domain>(
        f: FuncBuilder,
        domain: &D,
    ) -> (Module, FuncMeta, Cfg, FuncAnalysis<D::V>) {
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        let m = mb.build().expect("validates");
        let meta = validate(&m).expect("validates");
        let fm = meta.funcs[0].clone();
        let cfg = Cfg::build(&m.funcs[0].body.code, &fm);
        let decl = &m.funcs[0];
        let fty = m.types[decl.type_idx as usize].clone();
        let mut local_types = fty.params.clone();
        local_types.extend(decl.body.flat_locals());
        let fa = analyze(&cfg, &m, domain, &local_types, fty.params.len());
        (m, fm, cfg, fa)
    }

    #[test]
    fn constants_fold_through_arithmetic() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.i32_const(6).i32_const(7).i32_mul();
        let (m, _fm, cfg, fa) = analyze_first(f, &ConstDomain);
        let mut at_end = None;
        fa.for_each_instr(&cfg, &m, &ConstDomain, |ins, st| {
            if ins.op == op::END {
                at_end = st.map(|s| s.stack.clone());
            }
        });
        let stack = at_end.expect("end is reachable");
        assert_eq!(stack, vec![AbsConst::Const(42)]);
    }

    #[test]
    fn zero_initialised_local_is_constant_until_clobbered_in_loop() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let x = f.local(I32);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(x).i32_const(1).i32_add().local_set(x);
        });
        f.local_get(x);
        let (m, _fm, cfg, fa) = analyze_first(f, &ConstDomain);
        // After the loop, x joined over iterations must be Unknown.
        let mut last_get = None;
        fa.for_each_instr(&cfg, &m, &ConstDomain, |ins, st| {
            if ins.op == op::LOCAL_GET {
                last_get = st.map(|s| s.locals[1]);
            }
        });
        assert_eq!(last_get, Some(AbsConst::Unknown));
    }

    #[test]
    fn type_domain_tracks_stack_shape() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(1).i32_add();
        let (m, _fm, cfg, fa) = analyze_first(f, &TypeDomain);
        let mut shapes = Vec::new();
        fa.for_each_instr(&cfg, &m, &TypeDomain, |_, st| {
            shapes.push(st.map(|s| s.stack.len()));
        });
        // local.get, i32.const, i32.add, end
        assert_eq!(shapes, vec![Some(0), Some(1), Some(2), Some(1)]);
    }

    #[test]
    fn division_by_constant_zero_does_not_fold() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.i32_const(1).i32_const(0).op(op::I32_DIV_U);
        let (m, _fm, cfg, fa) = analyze_first(f, &ConstDomain);
        let mut at_end = None;
        fa.for_each_instr(&cfg, &m, &ConstDomain, |ins, st| {
            if ins.op == op::END {
                at_end = st.map(|s| s.stack.clone());
            }
        });
        assert_eq!(at_end.expect("reachable"), vec![AbsConst::Unknown]);
    }
}
