//! A small lint pass over validated modules, built on the constancy
//! and reachability analyses: statically-dead instructions,
//! constant-foldable numeric ops, and redundant `local.get x;
//! local.set x` pairs.

use std::fmt;

use wizard_engine::numeric;
use wizard_engine::value::Slot;
use wizard_wasm::instr::Imm;
use wizard_wasm::module::FuncIdx;
use wizard_wasm::module::Module;
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::{numeric_sig, validate};

use crate::cfg::Cfg;
use crate::dataflow::{analyze, AbsConst, ConstDomain};

/// What a lint finding is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// The instruction can never execute.
    DeadCode,
    /// A numeric op whose operands are compile-time constants.
    ConstFoldable,
    /// `local.get x` immediately followed by `local.set x`.
    RedundantGetSet,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintKind::DeadCode => "dead-code",
            LintKind::ConstFoldable => "const-foldable",
            LintKind::RedundantGetSet => "redundant-get-set",
        })
    }
}

/// One lint finding, located by global function index and byte pc.
#[derive(Debug, Clone)]
pub struct LintFinding {
    /// Global function index.
    pub func: FuncIdx,
    /// Byte offset of the offending instruction.
    pub pc: u32,
    /// Finding category.
    pub kind: LintKind,
    /// Human-readable detail.
    pub msg: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] func {} pc={}: {}", self.kind, self.func, self.pc, self.msg)
    }
}

/// Lints every local function of a validated module.
///
/// # Panics
///
/// Panics if the module does not validate.
pub fn lint_module(module: &Module) -> Vec<LintFinding> {
    let meta = validate(module).expect("module was validated");
    let n_imp = module.num_imported_funcs();
    let mut findings = Vec::new();
    for (i, decl) in module.funcs.iter().enumerate() {
        let func = n_imp + i as u32;
        let cfg = Cfg::build(&decl.body.code, &meta.funcs[i]);
        let fty = &module.types[decl.type_idx as usize];
        let mut local_types = fty.params.clone();
        local_types.extend(decl.body.flat_locals());
        let fa = analyze(&cfg, module, &ConstDomain, &local_types, fty.params.len());

        let mut prev: Option<(u8, u32, u32)> = None; // (op, idx, pc)
        fa.for_each_instr(&cfg, module, &ConstDomain, |ins, st| {
            match st {
                None => {
                    // `end`/`else` are structure, not computation; flagging
                    // them as dead is noise.
                    if !matches!(ins.op, op::END | op::ELSE) {
                        findings.push(LintFinding {
                            func,
                            pc: ins.pc,
                            kind: LintKind::DeadCode,
                            msg: "statically unreachable".into(),
                        });
                    }
                }
                Some(s) => {
                    if let Some((params, _)) = numeric_sig(ins.op) {
                        let n = params.len();
                        if s.stack.len() >= n {
                            let args = &s.stack[s.stack.len() - n..];
                            let consts: Vec<Slot> = args
                                .iter()
                                .filter_map(|a| match a {
                                    AbsConst::Const(b) => Some(Slot(*b)),
                                    AbsConst::Unknown => None,
                                })
                                .collect();
                            let folded = match consts.as_slice() {
                                [a] if numeric::is_unop(ins.op) => numeric::unop(ins.op, *a).ok(),
                                [a, b] if numeric::is_binop(ins.op) => {
                                    numeric::binop(ins.op, *a, *b).ok()
                                }
                                _ => None,
                            };
                            if let Some(v) = folded {
                                findings.push(LintFinding {
                                    func,
                                    pc: ins.pc,
                                    kind: LintKind::ConstFoldable,
                                    msg: format!(
                                        "operands are constant; folds to slot bits {:#x}",
                                        v.0
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            // Syntactic redundant get/set detection, independent of facts.
            if let (Some((op::LOCAL_GET, gi, gpc)), op::LOCAL_SET, Imm::Idx(si)) =
                (prev, ins.op, &ins.imm)
            {
                if gi == *si {
                    findings.push(LintFinding {
                        func,
                        pc: gpc,
                        kind: LintKind::RedundantGetSet,
                        msg: format!("local.get {gi}; local.set {gi} is a no-op"),
                    });
                }
            }
            prev = match (ins.op, &ins.imm) {
                (op::LOCAL_GET, Imm::Idx(x)) => Some((op::LOCAL_GET, *x, ins.pc)),
                _ => None,
            };
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn lint(f: FuncBuilder) -> Vec<LintFinding> {
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        lint_module(&mb.build().expect("validates"))
    }

    #[test]
    fn reports_constant_foldable_and_redundant_pairs() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.i32_const(6).i32_const(7).i32_mul().drop_();
        f.local_get(0).local_set(0);
        f.local_get(0);
        let findings = lint(f);
        assert!(findings
            .iter()
            .any(|f| f.kind == LintKind::ConstFoldable && f.msg.contains("0x2a")));
        assert!(findings.iter().any(|f| f.kind == LintKind::RedundantGetSet));
    }

    #[test]
    fn reports_dead_code_after_return() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).return_();
        f.i32_const(1).drop_();
        f.local_get(0);
        let findings = lint(f);
        let dead = findings.iter().filter(|f| f.kind == LintKind::DeadCode).count();
        assert!(dead >= 2, "const+drop are dead, got {dead}: {findings:?}");
    }

    #[test]
    fn clean_code_is_quiet() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(1).i32_add();
        assert!(lint(f).is_empty());
    }
}
