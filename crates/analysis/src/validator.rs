//! Translation validation of the lowered pipeline.
//!
//! The engine runs three representations of every function body — the
//! bytes, the pre-decoded [`Lowered`] slots, and JIT code compiled from
//! them. Differential execution checks their agreement on *sampled*
//! inputs; this module checks the byte→lowered translation *statically*
//! and exhaustively, by mapping each side to a normal-form `Effect`
//! per instruction and requiring:
//!
//! 1. **pc ↔ slot bijectivity** — every instruction boundary maps to
//!    exactly one slot and back, non-boundary offsets map to nothing,
//!    and the one-past-the-end sentinels agree.
//! 2. **Effect equality** — each lowered slot (with fused
//!    superinstructions decomposed back into their component effects by
//!    an *independent* decoder, not the engine's own fused table) has
//!    the same abstract effect as the byte instruction at the same pc,
//!    with branch targets resolved through the slot map and compared as
//!    byte pcs.
//! 3. **Fusion legality** — slots covered by a fused head are not
//!    branch targets (control may only enter a fused region at its
//!    head) and still hold their original instruction, so probes can
//!    unfuse them.

use std::collections::HashSet;
use std::fmt;

use wizard_engine::lowered::{
    fused_len, is_fused, LInstr, Lowered, FUSED_CMP_BR, FUSED_CONST_BIN, FUSED_GET_BIN,
    FUSED_GET_GET, FUSED_GET_GET_BIN, FUSED_GET_SET, FUSED_GG_CMP_BR, FUSED_UPD,
};
use wizard_engine::value::Slot;
use wizard_engine::ModuleArtifact;
use wizard_wasm::instr::{Imm, Instr, InstrIter};
use wizard_wasm::module::FuncIdx;
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::{numeric_sig, FuncMeta, SideEntry};

/// A byte→lowered translation defect, pinpointed to a function, byte
/// pc, and lowered slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweringMismatch {
    /// Global function index.
    pub func: FuncIdx,
    /// Byte offset of the offending instruction.
    pub pc: u32,
    /// Lowered slot index.
    pub slot: u32,
    /// What disagreed.
    pub msg: String,
}

impl fmt::Display for LoweringMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lowering mismatch in func {} at pc={} (slot {}): {}",
            self.func, self.pc, self.slot, self.msg
        )
    }
}

impl std::error::Error for LoweringMismatch {}

/// The normal form both representations are mapped onto. One variant
/// per instruction family whose semantics depend on its immediates;
/// everything else is `Plain(opcode)`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Effect {
    /// Push a constant. `ty` is the const opcode when the
    /// representation still knows it (`None` on the decomposed side of
    /// a fused `const+binop`, where only the slot bits survive).
    Const {
        bits: u64,
        ty: Option<u8>,
    },
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),
    /// A load or store with its constant byte offset.
    Mem {
        op: u8,
        offset: u32,
    },
    /// A pure numeric op.
    Numeric(u8),
    /// A control transfer: destination as a *byte pc* (the lowered side
    /// resolves its slot through the pc map), plus carried arity and
    /// truncation height.
    Branch {
        op: u8,
        target_pc: u32,
        keep: u32,
        height: u32,
    },
    /// `br_table`: each entry as `(target_pc, keep, height)`.
    Table(Vec<(u32, u32, u32)>),
    Call(u32),
    CallIndirect(u32),
    Plain(u8),
}

impl Effect {
    /// Equality modulo the const-opcode annotation: slot bits must
    /// always match, the opcode only when both sides still carry it.
    fn equals(&self, other: &Effect) -> bool {
        match (self, other) {
            (Effect::Const { bits: a, ty: ta }, Effect::Const { bits: b, ty: tb }) => {
                a == b
                    && match (ta, tb) {
                        (Some(x), Some(y)) => x == y,
                        _ => true,
                    }
            }
            _ => self == other,
        }
    }
}

/// Maps a decoded byte instruction to its effect, resolving branches
/// through the validation side table.
fn byte_effect(ins: &Instr, meta: &FuncMeta) -> Result<Effect, String> {
    let branch = |o: u8| -> Result<Effect, String> {
        match meta.side.get(&ins.pc) {
            Some(SideEntry::Br(t) | SideEntry::IfFalse(t) | SideEntry::ElseSkip(t)) => {
                Ok(Effect::Branch {
                    op: o,
                    target_pc: t.target_pc,
                    keep: t.arity,
                    height: t.height,
                })
            }
            other => Err(format!("no side entry for branch at pc={}: {other:?}", ins.pc)),
        }
    };
    Ok(match (ins.op, &ins.imm) {
        (op::I32_CONST, Imm::I32(v)) => {
            Effect::Const { bits: Slot::from_i32(*v).0, ty: Some(ins.op) }
        }
        (op::I64_CONST, Imm::I64(v)) => {
            Effect::Const { bits: Slot::from_i64(*v).0, ty: Some(ins.op) }
        }
        (op::F32_CONST, Imm::F32(v)) => {
            Effect::Const { bits: Slot::from_f32(*v).0, ty: Some(ins.op) }
        }
        (op::F64_CONST, Imm::F64(v)) => {
            Effect::Const { bits: Slot::from_f64(*v).0, ty: Some(ins.op) }
        }
        (op::LOCAL_GET, Imm::Idx(i)) => Effect::LocalGet(*i),
        (op::LOCAL_SET, Imm::Idx(i)) => Effect::LocalSet(*i),
        (op::LOCAL_TEE, Imm::Idx(i)) => Effect::LocalTee(*i),
        (op::GLOBAL_GET, Imm::Idx(i)) => Effect::GlobalGet(*i),
        (op::GLOBAL_SET, Imm::Idx(i)) => Effect::GlobalSet(*i),
        (o @ (op::I32_LOAD..=op::I64_STORE32), Imm::Mem { offset, .. }) => {
            Effect::Mem { op: o, offset: *offset }
        }
        (o @ (op::BR | op::BR_IF | op::IF | op::ELSE), _) => branch(o)?,
        (op::BR_TABLE, _) => match meta.side.get(&ins.pc) {
            Some(SideEntry::Table(ts)) => {
                Effect::Table(ts.iter().map(|t| (t.target_pc, t.arity, t.height)).collect())
            }
            other => Err(format!("no table side entry at pc={}: {other:?}", ins.pc))?,
        },
        (op::CALL, Imm::Idx(i)) => Effect::Call(*i),
        (op::CALL_INDIRECT, Imm::CallIndirect { type_idx, .. }) => Effect::CallIndirect(*type_idx),
        (o, _) if numeric_sig(o).is_some() => Effect::Numeric(o),
        (o, _) => Effect::Plain(o),
    })
}

/// Maps a *non-fused* lowered slot to its effect, resolving branch
/// target slots back to byte pcs through the slot map.
fn slot_effect(li: LInstr, low: &Lowered) -> Effect {
    let branch = |o: u8| {
        let t = low.target(li.x);
        Effect::Branch {
            op: o,
            target_pc: low.pc_of(t.slot as usize),
            keep: t.keep,
            height: t.height,
        }
    };
    match li.op {
        op::I32_CONST | op::I64_CONST | op::F32_CONST | op::F64_CONST => {
            Effect::Const { bits: li.z, ty: Some(li.op) }
        }
        op::LOCAL_GET => Effect::LocalGet(li.x),
        op::LOCAL_SET => Effect::LocalSet(li.x),
        op::LOCAL_TEE => Effect::LocalTee(li.x),
        op::GLOBAL_GET => Effect::GlobalGet(li.x),
        op::GLOBAL_SET => Effect::GlobalSet(li.x),
        o @ (op::I32_LOAD..=op::I64_STORE32) => Effect::Mem { op: o, offset: li.x },
        o @ (op::BR | op::BR_IF | op::IF | op::ELSE) => branch(o),
        op::BR_TABLE => Effect::Table(
            low.table(li.x)
                .iter()
                .map(|t| (low.pc_of(t.slot as usize), t.keep, t.height))
                .collect(),
        ),
        op::CALL => Effect::Call(li.x),
        op::CALL_INDIRECT => Effect::CallIndirect(li.x),
        o if numeric_sig(o).is_some() => Effect::Numeric(o),
        o => Effect::Plain(o),
    }
}

/// Decomposes a fused superinstruction into the effect sequence it must
/// be equivalent to. This decoder is deliberately independent of the
/// engine's own `fused` unfuse table — the whole point is to re-derive
/// the meaning from the encoding and catch the engine being wrong.
fn decompose_fused(li: LInstr, low: &Lowered) -> Vec<Effect> {
    let branch = || {
        let t = low.target(li.x);
        Effect::Branch {
            op: op::BR_IF,
            target_pc: low.pc_of(t.slot as usize),
            keep: t.keep,
            height: t.height,
        }
    };
    match li.op {
        FUSED_GET_GET => vec![Effect::LocalGet(li.x), Effect::LocalGet(li.z as u32)],
        FUSED_GET_SET => vec![Effect::LocalGet(li.x), Effect::LocalSet(li.z as u32)],
        FUSED_GET_BIN => vec![Effect::LocalGet(li.x), Effect::Numeric(li.y)],
        FUSED_CONST_BIN => {
            vec![Effect::Const { bits: li.z, ty: None }, Effect::Numeric(li.y)]
        }
        FUSED_CMP_BR => vec![Effect::Numeric(li.y), branch()],
        FUSED_GET_GET_BIN => {
            vec![Effect::LocalGet(li.x), Effect::LocalGet(li.z as u32), Effect::Numeric(li.y)]
        }
        FUSED_GG_CMP_BR => vec![
            Effect::LocalGet((li.z & 0xffff_ffff) as u32),
            Effect::LocalGet((li.z >> 32) as u32),
            Effect::Numeric(li.y),
            branch(),
        ],
        FUSED_UPD => vec![
            Effect::LocalGet(li.x),
            Effect::Const { bits: li.z, ty: None },
            Effect::Numeric(li.y),
            Effect::LocalSet(li.x),
        ],
        o => unreachable!("not a fused opcode: {o:#x}"),
    }
}

/// Validates the lowering of one function body against its bytes.
pub fn validate_func_lowering(
    func: FuncIdx,
    bytes: &[u8],
    meta: &FuncMeta,
    low: &Lowered,
) -> Result<(), LoweringMismatch> {
    let err = |pc: u32, slot: u32, msg: String| Err(LoweringMismatch { func, pc, slot, msg });

    let instrs: Vec<Instr> = match InstrIter::new(bytes).collect() {
        Ok(v) => v,
        Err(e) => return err(e.pc, 0, format!("bytes do not decode: {e:?}")),
    };

    // --- 1. pc ↔ slot bijectivity -------------------------------------
    if low.len() != instrs.len() {
        return err(
            0,
            0,
            format!("{} byte instructions but {} lowered slots", instrs.len(), low.len()),
        );
    }
    let mut boundaries: HashSet<u32> = HashSet::with_capacity(instrs.len() + 1);
    for (s, ins) in instrs.iter().enumerate() {
        boundaries.insert(ins.pc);
        if low.pc_of(s) != ins.pc {
            return err(
                ins.pc,
                s as u32,
                format!(
                    "slot {s} maps to pc={} but instruction {s} is at pc={}",
                    low.pc_of(s),
                    ins.pc
                ),
            );
        }
        if low.slot_of(ins.pc) != Some(s as u32) {
            return err(
                ins.pc,
                s as u32,
                format!("pc={} maps to slot {:?}, expected {s}", ins.pc, low.slot_of(ins.pc)),
            );
        }
    }
    let end = bytes.len() as u32;
    boundaries.insert(end);
    if low.pc_of(low.len()) != end || low.slot_of(end) != Some(low.len() as u32) {
        return err(end, low.len() as u32, "one-past-the-end sentinels disagree".into());
    }
    for pc in 0..end {
        if !boundaries.contains(&pc) && low.slot_of(pc).is_some() {
            return err(pc, 0, "non-boundary byte offset maps to a slot".into());
        }
    }

    // --- 2 & 3. effect equality and fusion legality --------------------
    let mut branch_target_slots: HashSet<u32> = low.targets.iter().map(|t| t.slot).collect();
    for table in low.tables.iter() {
        branch_target_slots.extend(table.iter().map(|t| t.slot));
    }

    let compare = |s: usize, want: &Effect, got: &Effect| -> Result<(), LoweringMismatch> {
        if want.equals(got) {
            Ok(())
        } else {
            Err(LoweringMismatch {
                func,
                pc: instrs[s].pc,
                slot: s as u32,
                msg: format!("lowered effect {got:?} != byte effect {want:?}"),
            })
        }
    };
    let byte_eff = |s: usize| -> Result<Effect, LoweringMismatch> {
        byte_effect(&instrs[s], meta).map_err(|msg| LoweringMismatch {
            func,
            pc: instrs[s].pc,
            slot: s as u32,
            msg,
        })
    };

    let mut s = 0usize;
    while s < low.len() {
        let li = low.get(s);
        if is_fused(li.op) {
            let f = fused_len(li.op);
            if s + f > low.len() {
                return err(
                    instrs[s].pc,
                    s as u32,
                    format!("fused region of length {f} overruns the body"),
                );
            }
            let parts = decompose_fused(li, low);
            debug_assert_eq!(parts.len(), f);
            for (k, part) in parts.iter().enumerate() {
                let want = byte_eff(s + k)?;
                compare(s + k, &want, part)?;
            }
            for k in 1..f {
                let covered = s + k;
                if branch_target_slots.contains(&(covered as u32)) {
                    return err(
                        instrs[covered].pc,
                        covered as u32,
                        format!("fused head at slot {s} covers branch-target slot {covered}"),
                    );
                }
                // Covered slots must retain their original instruction so
                // a probe landing there can unfuse the head.
                let want = byte_eff(covered)?;
                let got = slot_effect(low.get(covered), low);
                compare(covered, &want, &got)?;
            }
            s += f;
        } else {
            let want = byte_eff(s)?;
            let got = slot_effect(li, low);
            compare(s, &want, &got)?;
            s += 1;
        }
    }

    Ok(())
}

/// Validates the lowering of every local function of a module artifact,
/// forcing the lowering of any function not yet demanded.
pub fn validate_lowering(artifact: &ModuleArtifact) -> Result<(), LoweringMismatch> {
    for fa in artifact.funcs() {
        validate_func_lowering(fa.func, &fa.bytes, &fa.meta, fa.lowered())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;
    use wizard_wasm::validate::validate;

    fn module_for(f: FuncBuilder) -> wizard_wasm::module::Module {
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        mb.build().expect("validates")
    }

    #[test]
    fn straight_line_lowering_validates() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(1).i32_add();
        let m = module_for(f);
        let artifact = ModuleArtifact::new(m).expect("validates");
        artifact.lower_all();
        validate_lowering(&artifact).expect("lowering is faithful");
    }

    #[test]
    fn fused_loops_validate() {
        // for_range produces GG_CMP_BR / UPD fusions.
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
        });
        f.local_get(acc);
        let m = module_for(f);
        let artifact = ModuleArtifact::new(m).expect("validates");
        artifact.lower_all();
        let low = artifact.funcs()[0].lowered();
        let fused = (0..low.len()).filter(|&s| is_fused(low.get(s).op)).count();
        assert!(fused > 0, "loop body should fuse");
        validate_lowering(&artifact).expect("fused lowering is faithful");
    }

    #[test]
    fn all_suite_kernels_validate() {
        for b in wizard_suites::all_suites(wizard_suites::Scale::Test) {
            let artifact = ModuleArtifact::new(b.module).expect("kernel validates");
            artifact.lower_all();
            if let Err(e) = validate_lowering(&artifact) {
                panic!("{}/{}: {e}", b.suite, b.name);
            }
        }
    }

    #[test]
    fn corrupted_const_payload_is_rejected_with_precise_diagnostic() {
        // Two bodies identical except for one const payload: lower the
        // tampered body, then validate that lowering against the
        // *original* bytes. The validator must pinpoint the const.
        let build = |c: i32| {
            let mut f = FuncBuilder::new(&[I32], &[I32]);
            f.local_get(0).drop_();
            f.i32_const(c);
            module_for(f)
        };
        let original = build(5);
        let tampered = build(6);
        let ometa = validate(&original).expect("validates");
        let tmeta = validate(&tampered).expect("validates");
        let bad = Lowered::lower(&tampered.funcs[0].body.code, &tmeta.funcs[0]);

        let err = validate_func_lowering(0, &original.funcs[0].body.code, &ometa.funcs[0], &bad)
            .expect_err("corrupted stream must be rejected");
        // local.get(2 bytes) + drop(1) put the const at pc=3, slot 2.
        assert_eq!(err.func, 0);
        assert_eq!(err.pc, 3);
        assert_eq!(err.slot, 2);
        let shown = err.to_string();
        assert!(shown.contains("func 0") && shown.contains("pc=3"), "diagnostic: {shown}");
    }

    #[test]
    fn branch_target_corruption_is_rejected() {
        // An if/else body vs. a plain body: same instruction *count* can't
        // be arranged easily, so corrupt by lowering a body whose branch
        // goes elsewhere and checking count mismatch is also caught.
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0);
        let m = module_for(f);
        let meta = validate(&m).expect("validates");
        let low = Lowered::lower(&m.funcs[0].body.code, &meta.funcs[0]);

        let mut g = FuncBuilder::new(&[I32], &[I32]);
        g.local_get(0).i32_const(1).i32_add();
        let m2 = module_for(g);
        let err = validate_func_lowering(0, &m2.funcs[0].body.code, &meta.funcs[0], &low)
            .expect_err("slot-count mismatch must be rejected");
        assert!(err.msg.contains("lowered slots"), "{err}");
    }
}
