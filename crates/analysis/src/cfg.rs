//! Control-flow graphs over decoded function bodies.
//!
//! Basic blocks are derived from the validator's branch side table
//! ([`FuncMeta::side`]): block leaders are the function entry, every
//! branch-target pc, and every instruction following a control transfer.
//! Edges carry the side table's [`Target`] (destination pc, carried
//! arity, stack height to truncate to), which is exactly the information
//! the dataflow driver needs to flow abstract stacks across merge points
//! without tracking the structured control stack.

use std::collections::{HashMap, HashSet};

use wizard_wasm::instr::{Instr, InstrIter};
use wizard_wasm::opcodes as op;
use wizard_wasm::validate::{FuncMeta, SideEntry, Target};

/// One edge out of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Index of the successor block.
    pub block: usize,
    /// The side-table target, for branch edges: carried arity and the
    /// operand-stack height to truncate to. `None` on fall-through edges
    /// (the abstract stack passes through unchanged).
    pub target: Option<Target>,
}

/// A maximal straight-line instruction sequence.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Index of the first instruction (into [`Cfg::instrs`]).
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
    /// Successor edges, in taken-before-fallthrough-irrelevant code order.
    pub succs: Vec<Edge>,
}

/// A function body's control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// Decoded instructions in code order.
    pub instrs: Vec<Instr>,
    /// Basic blocks in code order; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Reverse postorder over the blocks *reachable from entry*.
    pub rpo: Vec<usize>,
    /// pcs that are targets of CFG back-edges — the analysis-side
    /// definition of a loop header.
    pub loop_headers: Vec<u32>,
}

/// `true` if the instruction unconditionally ends straight-line flow.
fn is_terminator(o: u8) -> bool {
    matches!(o, op::BR | op::BR_TABLE | op::RETURN | op::UNREACHABLE | op::ELSE)
}

/// `true` if the instruction ends a block but may fall through.
fn ends_block(o: u8) -> bool {
    is_terminator(o) || matches!(o, op::BR_IF | op::IF)
}

impl Cfg {
    /// Builds the CFG of a validated function body from its bytes and
    /// validation metadata.
    ///
    /// # Panics
    ///
    /// Panics on undecodable bytes or missing side-table entries —
    /// impossible for validated code.
    pub fn build(bytes: &[u8], meta: &FuncMeta) -> Cfg {
        let instrs: Vec<Instr> =
            InstrIter::new(bytes).map(|i| i.expect("validated code decodes")).collect();
        let index_of_pc: HashMap<u32, usize> =
            instrs.iter().enumerate().map(|(i, ins)| (ins.pc, i)).collect();

        // Leaders: entry, branch targets, and instructions after control
        // transfers. A target of `bytes.len()` is the implicit function
        // exit — no block there.
        let mut leaders: HashSet<usize> = HashSet::new();
        leaders.insert(0);
        let add_target = |t: &Target, leaders: &mut HashSet<usize>| {
            if let Some(&i) = index_of_pc.get(&t.target_pc) {
                leaders.insert(i);
            }
        };
        for entry in meta.side.values() {
            match entry {
                SideEntry::Br(t) | SideEntry::IfFalse(t) | SideEntry::ElseSkip(t) => {
                    add_target(t, &mut leaders);
                }
                SideEntry::Table(ts) => {
                    for t in ts {
                        add_target(t, &mut leaders);
                    }
                }
            }
        }
        for (i, ins) in instrs.iter().enumerate() {
            if ends_block(ins.op) && i + 1 < instrs.len() {
                leaders.insert(i + 1);
            }
        }

        // Blocks in code order.
        let mut starts: Vec<usize> = leaders.into_iter().collect();
        starts.sort_unstable();
        let block_of_start: HashMap<usize, usize> =
            starts.iter().enumerate().map(|(b, &s)| (s, b)).collect();
        let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
        for (b, &start) in starts.iter().enumerate() {
            let end = starts.get(b + 1).copied().unwrap_or(instrs.len());
            blocks.push(Block { start, end, succs: Vec::new() });
        }

        // Successor edges.
        let block_of_pc = |pc: u32| index_of_pc.get(&pc).and_then(|i| block_of_start.get(i));
        for block in &mut blocks {
            let last = block.end - 1;
            let ins = &instrs[last];
            let mut succs = Vec::new();
            let fall = |succs: &mut Vec<Edge>| {
                if last + 1 < instrs.len() {
                    succs.push(Edge { block: block_of_start[&(last + 1)], target: None });
                }
            };
            let branch = |t: &Target, succs: &mut Vec<Edge>| {
                if let Some(&blk) = block_of_pc(t.target_pc) {
                    succs.push(Edge { block: blk, target: Some(*t) });
                }
            };
            match ins.op {
                op::BR | op::ELSE => {
                    if let Some(SideEntry::Br(t) | SideEntry::ElseSkip(t) | SideEntry::IfFalse(t)) =
                        meta.side.get(&ins.pc)
                    {
                        branch(t, &mut succs);
                    }
                }
                op::BR_IF | op::IF => {
                    fall(&mut succs);
                    if let Some(SideEntry::Br(t) | SideEntry::IfFalse(t)) = meta.side.get(&ins.pc) {
                        branch(t, &mut succs);
                    }
                }
                op::BR_TABLE => {
                    if let Some(SideEntry::Table(ts)) = meta.side.get(&ins.pc) {
                        for t in ts {
                            branch(t, &mut succs);
                        }
                    }
                }
                op::RETURN | op::UNREACHABLE => {}
                _ => fall(&mut succs),
            }
            block.succs = succs;
        }

        // Iterative DFS for postorder; reversed gives RPO. Wasm control
        // flow is reducible, so an edge into a block with a smaller or
        // equal RPO number is a back edge.
        let mut state = vec![0u8; blocks.len()]; // 0 unvisited, 1 on stack, 2 done
        let mut post: Vec<usize> = Vec::with_capacity(blocks.len());
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        state[0] = 1;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            if *next < blocks[b].succs.len() {
                let s = blocks[b].succs[*next].block;
                *next += 1;
                if state[s] == 0 {
                    state[s] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b] = 2;
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = post.into_iter().rev().collect();
        let mut rpo_num = vec![usize::MAX; blocks.len()];
        for (n, &b) in rpo.iter().enumerate() {
            rpo_num[b] = n;
        }
        let mut loop_headers: Vec<u32> = Vec::new();
        for &b in &rpo {
            for e in &blocks[b].succs {
                if rpo_num[e.block] != usize::MAX && rpo_num[e.block] <= rpo_num[b] {
                    let pc = instrs[blocks[e.block].start].pc;
                    if !loop_headers.contains(&pc) {
                        loop_headers.push(pc);
                    }
                }
            }
        }
        loop_headers.sort_unstable();

        Cfg { instrs, blocks, rpo, loop_headers }
    }

    /// The block containing instruction index `i`, by binary search.
    pub fn block_of_instr(&self, i: usize) -> usize {
        match self.blocks.binary_search_by_key(&i, |b| b.start) {
            Ok(b) => b,
            Err(next) => next - 1,
        }
    }

    /// `true` if the block is reachable from the entry.
    pub fn is_reachable(&self, block: usize) -> bool {
        self.rpo.contains(&block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;
    use wizard_wasm::validate::validate;

    fn cfg_for(f: FuncBuilder) -> Cfg {
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        let m = mb.build().expect("validates");
        let meta = validate(&m).expect("validates");
        Cfg::build(&m.funcs[0].body.code, &meta.funcs[0])
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0).i32_const(1).i32_add();
        let cfg = cfg_for(f);
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.rpo, vec![0]);
        assert!(cfg.loop_headers.is_empty());
    }

    #[test]
    fn loop_back_edge_targets_match_validator_loop_headers() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        f.for_range(i, 0, |f| {
            f.nop();
        });
        f.local_get(0);
        let mut mb = ModuleBuilder::new();
        mb.add_func("f", f);
        let m = mb.build().expect("validates");
        let meta = validate(&m).expect("validates");
        let cfg = Cfg::build(&m.funcs[0].body.code, &meta.funcs[0]);
        assert_eq!(cfg.loop_headers.len(), 1);
        // Back-edge targets are exactly the pcs the validator recorded as
        // `loop` headers — actually-looping ones, a subset in general.
        for pc in &cfg.loop_headers {
            assert!(meta.funcs[0].loop_headers.contains(pc));
        }
        assert!(cfg.blocks.len() > 2, "loop body splits blocks");
    }

    #[test]
    fn code_after_unconditional_branch_is_unreachable() {
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        f.local_get(0);
        f.return_();
        f.i32_const(7).drop_();
        let cfg = cfg_for(f);
        let dead = cfg
            .blocks
            .iter()
            .enumerate()
            .filter(|(b, _)| !cfg.is_reachable(*b))
            .map(|(_, blk)| blk.end - blk.start)
            .sum::<usize>();
        assert!(dead >= 2, "const+drop after return are unreachable, got {dead}");
    }
}
