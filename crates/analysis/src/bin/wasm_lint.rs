//! Lints every suite kernel — plus the real-module ingestion corpus —
//! and translation-validates each lowered form.
//!
//! CI runs this in the smoke step: any lowering mismatch is a hard
//! failure (exit 1 with the func/pc-precise diagnostic); lint findings
//! are reported as a per-kernel summary.
//!
//! Coverage:
//!
//! * every suite kernel (`all_suites` + Richards), builder-built;
//! * every `wizard_suites::corpus` module, decoded from its encoded
//!   `.wasm` bytes so the sweep exercises the real frontend;
//! * every `.wasm` file under `tests/corpus/` (or the directories given
//!   as arguments) — the hand-assembled binaries produced outside the
//!   repo's own encoder.

use std::collections::HashMap;

use wizard_analysis::{lint_module, validate_lowering, LintKind};
use wizard_engine::ModuleArtifact;
use wizard_suites::corpus::corpus;
use wizard_suites::{all_suites, richards_benchmark, Scale};
use wizard_wasm::decode::decode;
use wizard_wasm::module::Module;

/// Lowering-validates and lints one module; exits on validation failure,
/// returns the lint findings otherwise.
fn check(name: &str, module: Module, total: &mut HashMap<LintKind, usize>) {
    let artifact = match ModuleArtifact::new(module) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{name}: failed validation: {e}");
            std::process::exit(1);
        }
    };
    artifact.lower_all();
    if let Err(e) = validate_lowering(&artifact) {
        eprintln!("{name}: {e}");
        std::process::exit(1);
    }

    let findings = lint_module(artifact.module());
    if !findings.is_empty() {
        let mut per: HashMap<LintKind, usize> = HashMap::new();
        for f in &findings {
            *per.entry(f.kind).or_default() += 1;
            *total.entry(f.kind).or_default() += 1;
        }
        let mut kinds: Vec<String> = per.iter().map(|(k, n)| format!("{k}: {n}")).collect();
        kinds.sort();
        println!("{name}: {}", kinds.join(", "));
    }
}

fn main() {
    let mut total: HashMap<LintKind, usize> = HashMap::new();
    let mut validated = 0usize;

    let mut kernels = all_suites(Scale::Test);
    kernels.push(richards_benchmark(1));
    for b in kernels {
        check(&format!("{}/{}", b.suite, b.name), b.module, &mut total);
        validated += 1;
    }

    // The ingestion corpus, decoded from raw bytes (not the built module):
    // the lint sweep sees exactly what an embedder would instantiate.
    for e in corpus(Scale::Test) {
        let module = match decode(&e.bytes) {
            Ok(m) => m,
            Err(err) => {
                eprintln!("corpus/{}: failed to decode: {err}", e.name);
                std::process::exit(1);
            }
        };
        check(&format!("corpus/{}", e.name), module, &mut total);
        validated += 1;
    }

    // Hand-assembled binaries on disk. Default to `tests/corpus/` when it
    // exists (running from the repo root); explicit directories override.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dirs: Vec<String> = if args.is_empty() {
        if std::path::Path::new("tests/corpus").is_dir() {
            vec!["tests/corpus".to_string()]
        } else {
            Vec::new()
        }
    } else {
        args
    };
    for dir in dirs {
        let mut files: Vec<std::path::PathBuf> = match std::fs::read_dir(&dir) {
            Ok(rd) => rd
                .filter_map(Result::ok)
                .map(|ent| ent.path())
                .filter(|p| p.extension().is_some_and(|x| x == "wasm"))
                .collect(),
            Err(e) => {
                eprintln!("{dir}: cannot read directory: {e}");
                std::process::exit(1);
            }
        };
        files.sort();
        if files.is_empty() {
            eprintln!("{dir}: no .wasm files to lint");
            std::process::exit(1);
        }
        for path in files {
            let name = path.display().to_string();
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{name}: cannot read: {e}");
                    std::process::exit(1);
                }
            };
            let module = match decode(&bytes) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("{name}: failed to decode: {e}");
                    std::process::exit(1);
                }
            };
            check(&name, module, &mut total);
            validated += 1;
        }
    }

    let mut summary: Vec<String> = total.iter().map(|(k, n)| format!("{k}: {n}")).collect();
    summary.sort();
    println!(
        "wasm-lint: {validated} modules lowering-validated; findings: {}",
        if summary.is_empty() { "none".to_string() } else { summary.join(", ") }
    );
}
