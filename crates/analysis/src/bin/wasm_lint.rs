//! Lints every suite kernel and translation-validates its lowered form.
//!
//! CI runs this in the smoke step: any lowering mismatch is a hard
//! failure (exit 1 with the func/pc-precise diagnostic); lint findings
//! are reported as a per-kernel summary.

use std::collections::HashMap;

use wizard_analysis::{lint_module, validate_lowering, LintKind};
use wizard_engine::ModuleArtifact;
use wizard_suites::{all_suites, richards_benchmark, Scale};

fn main() {
    let mut kernels = all_suites(Scale::Test);
    kernels.push(richards_benchmark(1));

    let mut total: HashMap<LintKind, usize> = HashMap::new();
    let mut validated = 0usize;
    for b in kernels {
        let name = format!("{}/{}", b.suite, b.name);
        let artifact = match ModuleArtifact::new(b.module) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{name}: failed validation: {e}");
                std::process::exit(1);
            }
        };
        artifact.lower_all();
        if let Err(e) = validate_lowering(&artifact) {
            eprintln!("{name}: {e}");
            std::process::exit(1);
        }
        validated += 1;

        let findings = lint_module(artifact.module());
        if !findings.is_empty() {
            let mut per: HashMap<LintKind, usize> = HashMap::new();
            for f in &findings {
                *per.entry(f.kind).or_default() += 1;
                *total.entry(f.kind).or_default() += 1;
            }
            let mut kinds: Vec<String> = per.iter().map(|(k, n)| format!("{k}: {n}")).collect();
            kinds.sort();
            println!("{name}: {}", kinds.join(", "));
        }
    }

    let mut summary: Vec<String> = total.iter().map(|(k, n)| format!("{k}: {n}")).collect();
    summary.sort();
    println!(
        "wasm-lint: {validated} kernels lowering-validated; findings: {}",
        if summary.is_empty() { "none".to_string() } else { summary.join(", ") }
    );
}
