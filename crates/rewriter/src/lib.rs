//! `wizard-rewriter`: static Wasm-to-Wasm bytecode rewriting — the
//! *intrusive* instrumentation baseline of the paper's §5.5 (there
//! implemented with the Walrus library).
//!
//! The rewriter decodes each function body to an instruction list, injects
//! stack-neutral payloads before matching instructions, and re-encodes.
//! Because Wasm branch targets are relative label *depths* (not byte
//! offsets), inserting non-control instructions never invalidates
//! branches; byte offsets shift, which is exactly the intrusiveness the
//! paper calls out (original locations are lost).
//!
//! Two ready-made transforms mirror the paper's experiments:
//!
//! * [`count_instructions`] — the hotness monitor by rewriting: an i64
//!   counter in a reserved linear-memory region, load/add/store before
//!   every instruction;
//! * [`count_branches`] — the branch monitor by rewriting: the same
//!   counter bump before every `if`/`br_if`/`br_table`;
//! * [`inject_host_call`] — a Wasabi-style trampoline: a call to an
//!   imported hook before matching instructions, passing `(func, pc)` and
//!   optionally the top-of-stack value via a scratch local.
//!
//! # Example
//!
//! Rewrite a module to count every instruction, run the *instrumented*
//! module on the engine, and read the counters back out of its linear
//! memory — behavior is preserved, but locations are not (the paper's
//! intrusiveness):
//!
//! ```
//! use wizard_engine::store::Linker;
//! use wizard_engine::{EngineConfig, Process, Value};
//! use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
//! use wizard_wasm::types::ValType::I32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new();
//! mb.memory(1); // counter rewriting stores counts in linear memory
//! let mut f = FuncBuilder::new(&[I32], &[I32]);
//! f.local_get(0).i32_const(1).i32_add();
//! mb.add_func("inc", f);
//! let module = mb.build()?;
//!
//! let counted = wizard_rewriter::count_instructions(&module)?;
//! let mut p = Process::new(counted.module.clone(), EngineConfig::interpreter(), &Linker::new())?;
//! let r = p.invoke_export("inc", &[Value::I32(41)])?;
//! assert_eq!(r, vec![Value::I32(42)], "rewriting must not change results");
//! assert_eq!(counted.sites.len(), 4); // local.get, i32.const, i32.add, end
//! assert_eq!(counted.total(p.memory().unwrap()), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use wizard_wasm::instr::{encode, Imm, Instr, InstrIter};
use wizard_wasm::module::{FuncIdx, Import, ImportDesc, Module};
use wizard_wasm::opcodes as op;
use wizard_wasm::types::{ValType, PAGE_SIZE};
use wizard_wasm::validate::{validate, ValidateError};

/// A site selected for instrumentation (pre-rewrite coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Function (global index, post-rewrite index space).
    pub func: FuncIdx,
    /// Original byte offset of the instruction.
    pub pc: u32,
    /// The instruction's opcode.
    pub opcode: u8,
}

/// Result of a counter-injection rewrite.
#[derive(Debug, Clone)]
pub struct Counted {
    /// The instrumented module.
    pub module: Module,
    /// Byte offset of the counter array in linear memory.
    pub counter_base: u32,
    /// The instrumented sites, in counter order.
    pub sites: Vec<Site>,
}

impl Counted {
    /// Reads counter `i` from a memory snapshot of the instrumented run.
    pub fn counter(&self, memory: &[u8], i: usize) -> u64 {
        let at = self.counter_base as usize + i * 8;
        u64::from_le_bytes(memory[at..at + 8].try_into().expect("in bounds"))
    }

    /// Sum of all counters.
    pub fn total(&self, memory: &[u8]) -> u64 {
        (0..self.sites.len()).map(|i| self.counter(memory, i)).sum()
    }
}

/// Generic rewriting: for every instruction of every local function where
/// `select` returns true, `payload` emits raw instruction bytes that are
/// inserted *before* the instruction. The payload must be stack-neutral.
///
/// `payload(site_index, site, out)` — `site_index` counts selected sites
/// across the whole module in code order.
///
/// # Errors
///
/// Returns the validation error if the rewritten module is invalid (i.e.
/// the payload was not stack-neutral).
pub fn rewrite(
    module: &Module,
    select: impl Fn(&Instr) -> bool,
    mut payload: impl FnMut(usize, &Site, &mut Vec<u8>),
) -> Result<(Module, Vec<Site>), ValidateError> {
    let mut out = module.clone();
    let n_imp = module.num_imported_funcs();
    let mut sites = Vec::new();
    let mut idx = 0usize;
    for (i, f) in out.funcs.iter_mut().enumerate() {
        let func = n_imp + i as u32;
        let mut code = Vec::with_capacity(f.body.code.len() * 2);
        for item in InstrIter::new(&f.body.code) {
            let instr = item.expect("validated input");
            if select(&instr) {
                let site = Site { func, pc: instr.pc, opcode: instr.op };
                if instr.op == op::LOOP {
                    // A probe at a loop header fires on entry AND on every
                    // backedge (branches target the loop instruction). The
                    // static equivalent is the payload as the first
                    // instruction of the loop body.
                    encode(instr.op, &instr.imm, &mut code);
                    payload(idx, &site, &mut code);
                } else {
                    payload(idx, &site, &mut code);
                    encode(instr.op, &instr.imm, &mut code);
                }
                sites.push(site);
                idx += 1;
            } else {
                encode(instr.op, &instr.imm, &mut code);
            }
        }
        f.body.code = code;
    }
    validate(&out)?;
    Ok((out, sites))
}

/// Pages the module currently declares for memory 0 (0 if none).
fn memory_pages(module: &Module) -> u32 {
    module.memory0().map_or(0, |m| m.limits.min)
}

/// Grows the module's memory by enough pages for `n` 8-byte counters and
/// returns the counter base address.
///
/// # Panics
///
/// Panics if the module has no memory (counting in memory requires one).
fn reserve_counters(module: &mut Module, n: usize) -> u32 {
    let pages = memory_pages(module);
    assert!(!module.memories.is_empty(), "counter rewriting requires a module-defined memory");
    let extra = (n * 8).div_ceil(PAGE_SIZE) as u32 + 1;
    let mem = &mut module.memories[0];
    mem.limits.min = pages + extra;
    if let Some(max) = mem.limits.max {
        mem.limits.max = Some(max.max(pages + extra));
    }
    pages * PAGE_SIZE as u32
}

fn counter_bump_payload(counter_base: u32, site_index: usize, out: &mut Vec<u8>) {
    let addr = counter_base as i32 + (site_index as i32) * 8;
    // i32.const addr ; i32.const addr ; i64.load ; i64.const 1 ; i64.add ;
    // i64.store — the paper's "counters stored in memory, necessitating
    // loads and stores".
    encode(op::I32_CONST, &Imm::I32(addr), out);
    encode(op::I32_CONST, &Imm::I32(addr), out);
    encode(op::I64_LOAD, &Imm::Mem { align: 3, offset: 0 }, out);
    encode(op::I64_CONST, &Imm::I64(1), out);
    encode(op::I64_ADD, &Imm::None, out);
    encode(op::I64_STORE, &Imm::Mem { align: 3, offset: 0 }, out);
}

/// The hotness monitor by static rewriting: an in-memory counter bump
/// before *every* instruction.
///
/// # Errors
///
/// Propagates validation failure of the rewritten module.
pub fn count_instructions(module: &Module) -> Result<Counted, ValidateError> {
    counted(module, |_| true)
}

/// The branch monitor by static rewriting: a counter bump before every
/// conditional branch.
///
/// # Errors
///
/// Propagates validation failure of the rewritten module.
pub fn count_branches(module: &Module) -> Result<Counted, ValidateError> {
    counted(module, |i| matches!(i.op, op::IF | op::BR_IF | op::BR_TABLE))
}

fn counted(module: &Module, select: impl Fn(&Instr) -> bool) -> Result<Counted, ValidateError> {
    // First pass: count sites so we can size the counter region.
    let n_sites: usize = module
        .funcs
        .iter()
        .map(|f| {
            InstrIter::new(&f.body.code).map(|i| i.expect("validated")).filter(&select).count()
        })
        .sum();
    let mut grown = module.clone();
    let counter_base = reserve_counters(&mut grown, n_sites);
    let (module, sites) = rewrite(&grown, select, |idx, _site, out| {
        counter_bump_payload(counter_base, idx, out);
    })?;
    Ok(Counted { module, counter_base, sites })
}

/// Injects a call to an imported hook function before each selected
/// instruction — the Wasabi-style trampoline transform.
///
/// The hook is imported as `(import "hook" <name> (func (param i32 i32 i32)))`
/// receiving `(func_index, original_pc, top_of_stack_or_zero)`. When
/// `pass_top` is true, the instruction's top-of-stack i32 operand is
/// passed via a scratch local (for branch-style analyses); the payload is
/// still stack-neutral.
///
/// Because imports precede local functions in the index space, all
/// function references in the module are shifted by one; the rewriter
/// fixes up `call` immediates, element segments, exports and the start
/// function.
///
/// # Errors
///
/// Propagates validation failure of the rewritten module.
///
/// # Panics
///
/// Panics if the module already imports functions (not needed for the
/// benchmark suites).
pub fn inject_host_call(
    module: &Module,
    hook_name: &str,
    select: impl Fn(&Instr) -> bool,
    pass_top: bool,
) -> Result<(Module, Vec<Site>), ValidateError> {
    let mut shifted = module.clone();
    assert_eq!(
        shifted.num_imported_funcs(),
        0,
        "inject_host_call supports modules without pre-existing function imports"
    );
    // Add the hook import (function index 0; all others shift by 1).
    let ty = {
        use wizard_wasm::types::FuncType;
        let t = FuncType::new(&[ValType::I32, ValType::I32, ValType::I32], &[]);
        if let Some(i) = shifted.types.iter().position(|x| *x == t) {
            i as u32
        } else {
            shifted.types.push(t);
            shifted.types.len() as u32 - 1
        }
    };
    shifted.imports.push(Import {
        module: "hook".into(),
        name: hook_name.into(),
        desc: ImportDesc::Func(ty),
    });
    // Fix up all function references.
    for e in &mut shifted.exports {
        if e.kind == wizard_wasm::types::ExternKind::Func {
            e.index += 1;
        }
    }
    for seg in &mut shifted.elems {
        for fidx in &mut seg.funcs {
            *fidx += 1;
        }
    }
    if let Some(s) = &mut shifted.start {
        *s += 1;
    }
    // Add a scratch local to every function when passing the top of stack.
    let scratch: Vec<u32> = shifted
        .funcs
        .iter_mut()
        .map(|f| {
            let ty = &module.types[f.type_idx as usize];
            let base = ty.params.len() as u32 + f.body.local_count();
            if pass_top {
                f.body.locals.push((1, ValType::I32));
            }
            base
        })
        .collect();
    let n_imp = 1u32; // the hook
    let mut out = shifted.clone();
    let mut sites = Vec::new();
    for (i, f) in out.funcs.iter_mut().enumerate() {
        let func = n_imp + i as u32;
        let scratch_local = scratch[i];
        let mut code = Vec::with_capacity(f.body.code.len() * 2);
        for item in InstrIter::new(&f.body.code) {
            let mut instr = item.expect("validated input");
            // Fix shifted direct-call targets.
            if instr.op == op::CALL {
                if let Imm::Idx(t) = instr.imm {
                    instr.imm = Imm::Idx(t + 1);
                }
            }
            if select(&instr) {
                sites.push(Site { func, pc: instr.pc, opcode: instr.op });
                let after_loop = instr.op == op::LOOP;
                if after_loop {
                    encode(instr.op, &instr.imm, &mut code);
                }
                if pass_top {
                    // [cond] local.tee s ; i32.const func ; i32.const pc ;
                    // local.get s ; call hook   (cond remains on the stack)
                    encode(op::LOCAL_TEE, &Imm::Idx(scratch_local), &mut code);
                    encode(op::I32_CONST, &Imm::I32(func as i32), &mut code);
                    encode(op::I32_CONST, &Imm::I32(instr.pc as i32), &mut code);
                    encode(op::LOCAL_GET, &Imm::Idx(scratch_local), &mut code);
                } else {
                    encode(op::I32_CONST, &Imm::I32(func as i32), &mut code);
                    encode(op::I32_CONST, &Imm::I32(instr.pc as i32), &mut code);
                    encode(op::I32_CONST, &Imm::I32(0), &mut code);
                }
                encode(op::CALL, &Imm::Idx(0), &mut code);
                if !after_loop {
                    encode(instr.op, &instr.imm, &mut code);
                }
            } else {
                encode(instr.op, &instr.imm, &mut code);
            }
        }
        f.body.code = code;
    }
    validate(&out)?;
    Ok((out, sites))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;
    use wizard_engine::store::Linker;
    use wizard_engine::{EngineConfig, Process, Value};
    use wizard_wasm::builder::{FuncBuilder, ModuleBuilder};
    use wizard_wasm::types::ValType::I32;

    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new();
        mb.memory(1);
        let mut f = FuncBuilder::new(&[I32], &[I32]);
        let i = f.local(I32);
        let acc = f.local(I32);
        f.for_range(i, 0, |f| {
            f.local_get(acc).local_get(i).i32_add().local_set(acc);
            // Touch memory so the kernel resembles real workloads.
            f.i32_const(64).local_get(acc).i32_store(0);
        });
        f.local_get(acc);
        mb.add_func("run", f);
        mb.build().unwrap()
    }

    #[test]
    fn instruction_counting_matches_engine_hotness() {
        let m = loop_module();
        let counted = count_instructions(&m).unwrap();
        let mut p =
            Process::new(counted.module.clone(), EngineConfig::jit(), &Linker::new()).unwrap();
        let r = p.invoke_export("run", &[Value::I32(10)]).unwrap();
        assert_eq!(r, vec![Value::I32(45)], "rewriting must preserve semantics");
        let total = counted.total(p.memory().unwrap());
        // Compare with the engine's own hotness monitor on the original.
        let mut p2 = Process::new(m, EngineConfig::interpreter(), &Linker::new()).unwrap();
        let hot = p2.attach_monitor(wizard_monitors::HotnessMonitor::new()).unwrap();
        p2.invoke_export("run", &[Value::I32(10)]).unwrap();
        assert_eq!(total, hot.borrow().total(), "rewriting and probes count identically");
    }

    #[test]
    fn branch_counting_counts_only_branches() {
        let m = loop_module();
        let counted = count_branches(&m).unwrap();
        assert_eq!(counted.sites.len(), 1); // the loop's br_if
        let mut p =
            Process::new(counted.module.clone(), EngineConfig::jit(), &Linker::new()).unwrap();
        p.invoke_export("run", &[Value::I32(10)]).unwrap();
        assert_eq!(counted.total(p.memory().unwrap()), 11);
    }

    #[test]
    fn host_call_injection_with_top_of_stack() {
        let m = loop_module();
        let (instrumented, sites) = inject_host_call(
            &m,
            "branch",
            |i| matches!(i.op, op::IF | op::BR_IF | op::BR_TABLE),
            true,
        )
        .unwrap();
        assert_eq!(sites.len(), 1);
        let taken = Rc::new(Cell::new(0u64));
        let not_taken = Rc::new(Cell::new(0u64));
        let (t2, n2) = (Rc::clone(&taken), Rc::clone(&not_taken));
        let mut linker = Linker::new();
        linker.func("hook", "branch", move |_ctx, args| {
            if args[2].as_i32().unwrap() != 0 {
                t2.set(t2.get() + 1);
            } else {
                n2.set(n2.get() + 1);
            }
            Ok(vec![])
        });
        let mut p = Process::new(instrumented, EngineConfig::jit(), &linker).unwrap();
        let r = p.invoke_export("run", &[Value::I32(10)]).unwrap();
        assert_eq!(r, vec![Value::I32(45)]);
        assert_eq!(taken.get(), 1);
        assert_eq!(not_taken.get(), 10);
    }

    #[test]
    fn rewriting_preserves_polybench_semantics() {
        for (name, m) in wizard_suites::polybench::all().into_iter().take(6) {
            let counted =
                count_instructions(&m).unwrap_or_else(|e| panic!("{name}: rewrite failed: {e}"));
            let mut orig = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
            let mut inst =
                Process::new(counted.module, EngineConfig::jit(), &Linker::new()).unwrap();
            let a = orig.invoke_export("run", &[Value::I32(8)]).unwrap();
            let b = inst.invoke_export("run", &[Value::I32(8)]).unwrap();
            assert_eq!(a[0].to_slot(), b[0].to_slot(), "{name}: instrumented result differs");
        }
    }

    #[test]
    fn host_call_injection_on_richards_fixes_indices() {
        let m = wizard_suites::richards::module();
        let calls = Rc::new(Cell::new(0u64));
        let c2 = Rc::clone(&calls);
        let (instrumented, _) =
            inject_host_call(&m, "every", |i| op::is_call(i.op), false).unwrap();
        let mut linker = Linker::new();
        linker.func("hook", "every", move |_ctx, _args| {
            c2.set(c2.get() + 1);
            Ok(vec![])
        });
        let mut orig = Process::new(m, EngineConfig::jit(), &Linker::new()).unwrap();
        let mut inst = Process::new(instrumented, EngineConfig::jit(), &linker).unwrap();
        let a = orig.invoke_export("run", &[Value::I32(500)]).unwrap();
        let b = inst.invoke_export("run", &[Value::I32(500)]).unwrap();
        assert_eq!(a, b, "call/elem index fixup must preserve behavior");
        assert!(calls.get() > 500, "hook fired per callsite execution");
    }
}
