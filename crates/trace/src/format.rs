//! The compact binary trace format.
//!
//! A trace is a byte stream carrying branch outcomes (and optionally
//! call/return and function enter/exit events) at production rates — the
//! wizard equivalent of the cbp-experiments tracers, whose 2-byte branch
//! `Entry` (taken-bit + branch-site index) reaches fractional
//! bits-per-branch once the stream is compressed. The format here stays
//! uncompressed but gets most of the win structurally:
//!
//! * a **site dictionary** up front maps dense site ids to `(func, pc)`
//!   locations, built from the *static match pass* over the module — the
//!   hot stream never repeats a 64-bit location;
//! * branch entries carry **delta-encoded site ids**: consecutive fires
//!   of nearby sites (the loop-dominated common case) fit a 1-byte
//!   entry, anything within ±4096 a 2-byte entry, the rest an escape;
//! * the stream is **block-framed with varint lengths**, and the
//!   delta state resets at each block boundary, so every block decodes
//!   independently — sinks can rotate files or ship blocks over a
//!   channel mid-stream without coordinating with the writer.
//!
//! ## Layout
//!
//! ```text
//! file   := magic version dict block*
//! magic  := "WZTR"            version := 0x01
//! dict   := varint(n) site^n  site    := varint(func_delta) varint(pc)
//! block  := varint(len > 0) payload[len]
//! ```
//!
//! Dictionary sites are in code order, so `func_delta` (from the previous
//! site's function index) is non-negative; `pc` is the absolute byte
//! offset within the body. Within a block payload, events are
//! byte-aligned; the first byte's low bits select the shape:
//!
//! ```text
//! b & 0b11 == 0b11  short branch (1 byte):
//!                     taken = b>>2 & 1, delta = zigzag⁻¹(b>>3)      (±16)
//! b & 0b11 == 0b01  branch (2 bytes, u16 LE):
//!                     taken = u>>2 & 1, delta = zigzag⁻¹(u>>3)    (±4096)
//! b & 0b11 == 0b00  tagged record, tag = b >> 2:
//!                     0 ext-branch   taken-byte varint(site)   (absolute)
//!                     1 func-enter   varint(func)
//!                     2 func-exit    varint(func)
//!                     3 call         varint(callee)   (!0 = indirect)
//!                     4 return       varint(func)
//! b & 0b11 == 0b10  invalid (reserved)
//! ```
//!
//! `site = prev + delta` with `prev` starting at 0 in every block and
//! updated by every branch event (all three spellings). The writer picks
//! the shortest spelling that fits; the decoder accepts any.

use std::collections::HashMap;

use wizard_engine::Location;
use wizard_wasm::instr::InstrIter;
use wizard_wasm::leb128;
use wizard_wasm::module::Module;
use wizard_wasm::opcodes as op;

/// The 4-byte stream magic.
pub const MAGIC: &[u8; 4] = b"WZTR";
/// Current format version.
pub const VERSION: u8 = 1;

/// The callee value of a [`TraceEvent::Call`] record whose target is not
/// statically known (`call_indirect`).
pub const INDIRECT_CALLEE: u32 = u32::MAX;

/// One decoded trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A conditional branch fired at dictionary site `site`; `taken`
    /// follows the engine's branch-profile convention (`br_table` is
    /// always taken).
    Branch {
        /// Dense site id into the trace's [`SiteDict`].
        site: u32,
        /// Whether the branch was taken.
        taken: bool,
    },
    /// Control entered a function body.
    FuncEnter {
        /// Function index.
        func: u32,
    },
    /// Control left a function body (`return` or the final `end`).
    FuncExit {
        /// Function index.
        func: u32,
    },
    /// A call instruction fired.
    Call {
        /// Static callee function index, or [`INDIRECT_CALLEE`] for
        /// `call_indirect` (the target is dynamic).
        callee: u32,
    },
    /// A function returned to its caller.
    Return {
        /// The returning function's index.
        func: u32,
    },
}

/// A malformed trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFormatError {
    /// The stream does not begin with [`MAGIC`] + [`VERSION`].
    BadHeader,
    /// The stream ends mid-structure; the payload names what was cut.
    Truncated(&'static str),
    /// A reserved event shape byte was encountered at this block offset.
    BadEvent(usize),
    /// A branch entry resolved to a site id outside the dictionary.
    BadSite(u32),
    /// A block frame declared a length past the end of the stream.
    BadBlockLength,
}

impl core::fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceFormatError::BadHeader => f.write_str("not a wizard trace (bad magic/version)"),
            TraceFormatError::Truncated(what) => write!(f, "truncated trace: {what}"),
            TraceFormatError::BadEvent(off) => {
                write!(f, "invalid event byte at block offset {off}")
            }
            TraceFormatError::BadSite(id) => write!(f, "site id {id} outside the dictionary"),
            TraceFormatError::BadBlockLength => f.write_str("block length overruns the stream"),
        }
    }
}

impl std::error::Error for TraceFormatError {}

// ---- the site dictionary ----

/// The per-module site dictionary: dense site id ↔ [`Location`], built
/// once from the static match pass and serialized at the head of every
/// trace so offline consumers resolve ids without the module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiteDict {
    sites: Vec<Location>,
    index: HashMap<Location, u32>,
}

impl SiteDict {
    /// Builds a dictionary from locations in code order.
    pub fn from_locations(locs: impl IntoIterator<Item = Location>) -> SiteDict {
        let sites: Vec<Location> = locs.into_iter().collect();
        let index = sites.iter().enumerate().map(|(i, l)| (*l, i as u32)).collect();
        SiteDict { sites, index }
    }

    /// The branch-site dictionary of a module: every `if`, `br_if` and
    /// `br_table` of every locally-defined function, in code order —
    /// exactly the sites the branch monitors instrument.
    pub fn branches(module: &Module) -> SiteDict {
        let n_imp = module.num_imported_funcs();
        let mut locs = Vec::new();
        for (i, f) in module.funcs.iter().enumerate() {
            let func = n_imp + i as u32;
            for item in InstrIter::new(&f.body.code) {
                let instr = item.expect("module was validated");
                if matches!(instr.op, op::IF | op::BR_IF | op::BR_TABLE) {
                    locs.push(Location { func, pc: instr.pc });
                }
            }
        }
        SiteDict::from_locations(locs)
    }

    /// The dense id of a location, if it is in the dictionary.
    pub fn id_of(&self, loc: Location) -> Option<u32> {
        self.index.get(&loc).copied()
    }

    /// The location of a dense id.
    pub fn location(&self, id: u32) -> Option<Location> {
        self.sites.get(id as usize).copied()
    }

    /// All locations, in id order.
    pub fn locations(&self) -> &[Location] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` if the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        leb128::write_u32(out, self.sites.len() as u32);
        let mut prev_func = 0u32;
        for loc in &self.sites {
            leb128::write_u32(out, loc.func - prev_func);
            leb128::write_u32(out, loc.pc);
            prev_func = loc.func;
        }
    }

    fn decode_from(buf: &[u8], mut pos: usize) -> Result<(SiteDict, usize), TraceFormatError> {
        let trunc = |_| TraceFormatError::Truncated("site dictionary");
        let (n, p) = leb128::read_u32(buf, pos).map_err(trunc)?;
        pos = p;
        let mut locs = Vec::with_capacity(n as usize);
        let mut func = 0u32;
        for _ in 0..n {
            let (fd, p) = leb128::read_u32(buf, pos).map_err(trunc)?;
            let (pc, p) = leb128::read_u32(buf, p).map_err(trunc)?;
            pos = p;
            func += fd;
            locs.push(Location { func, pc });
        }
        Ok((SiteDict::from_locations(locs), pos))
    }
}

// ---- encoding ----

fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(z: u32) -> i32 {
    ((z >> 1) as i32) ^ -((z & 1) as i32)
}

/// Encodes the stream header (magic, version, dictionary) into `out`.
pub fn encode_header(dict: &SiteDict, out: &mut Vec<u8>) {
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    dict.encode_into(out);
}

/// Appends one event to a block payload. `prev` is the block's running
/// branch-site id, updated in place by branch events.
pub fn encode_event(e: &TraceEvent, prev: &mut u32, out: &mut Vec<u8>) {
    match *e {
        TraceEvent::Branch { site, taken } => {
            let delta = site.wrapping_sub(*prev) as i32;
            let zz = zigzag(delta);
            let t = u32::from(taken);
            if zz < 1 << 5 {
                out.push((0b11 | (t << 2) | (zz << 3)) as u8);
            } else if zz < 1 << 13 {
                let u = (0b01 | (t << 2) | (zz << 3)) as u16;
                out.extend_from_slice(&u.to_le_bytes());
            } else {
                out.push(0b00);
                out.push(taken as u8);
                leb128::write_u32(out, site);
            }
            *prev = site;
        }
        TraceEvent::FuncEnter { func } => {
            out.push(1 << 2);
            leb128::write_u32(out, func);
        }
        TraceEvent::FuncExit { func } => {
            out.push(2 << 2);
            leb128::write_u32(out, func);
        }
        TraceEvent::Call { callee } => {
            out.push(3 << 2);
            leb128::write_u32(out, callee);
        }
        TraceEvent::Return { func } => {
            out.push(4 << 2);
            leb128::write_u32(out, func);
        }
    }
}

/// Decodes one block payload (delta state starts fresh at 0).
pub fn decode_block(
    payload: &[u8],
    dict: &SiteDict,
    out: &mut Vec<TraceEvent>,
) -> Result<(), TraceFormatError> {
    let mut pos = 0usize;
    let mut prev = 0u32;
    let trunc = |_| TraceFormatError::Truncated("event immediate");
    while pos < payload.len() {
        let b = payload[pos];
        match b & 0b11 {
            0b11 => {
                let taken = (b >> 2) & 1 == 1;
                let site = prev.wrapping_add_signed(unzigzag(u32::from(b >> 3)));
                push_branch(site, taken, dict, &mut prev, out)?;
                pos += 1;
            }
            0b01 => {
                let lo = b;
                let hi = *payload
                    .get(pos + 1)
                    .ok_or(TraceFormatError::Truncated("2-byte branch entry"))?;
                let u = u16::from_le_bytes([lo, hi]);
                let taken = (u >> 2) & 1 == 1;
                let site = prev.wrapping_add_signed(unzigzag(u32::from(u >> 3)));
                push_branch(site, taken, dict, &mut prev, out)?;
                pos += 2;
            }
            0b00 => {
                let tag = b >> 2;
                pos += 1;
                match tag {
                    0 => {
                        let taken = *payload
                            .get(pos)
                            .ok_or(TraceFormatError::Truncated("extended branch taken byte"))?
                            != 0;
                        let (site, p) = leb128::read_u32(payload, pos + 1).map_err(trunc)?;
                        pos = p;
                        push_branch(site, taken, dict, &mut prev, out)?;
                    }
                    1..=4 => {
                        let (v, p) = leb128::read_u32(payload, pos).map_err(trunc)?;
                        pos = p;
                        out.push(match tag {
                            1 => TraceEvent::FuncEnter { func: v },
                            2 => TraceEvent::FuncExit { func: v },
                            3 => TraceEvent::Call { callee: v },
                            _ => TraceEvent::Return { func: v },
                        });
                    }
                    _ => return Err(TraceFormatError::BadEvent(pos - 1)),
                }
            }
            _ => return Err(TraceFormatError::BadEvent(pos)),
        }
    }
    Ok(())
}

fn push_branch(
    site: u32,
    taken: bool,
    dict: &SiteDict,
    prev: &mut u32,
    out: &mut Vec<TraceEvent>,
) -> Result<(), TraceFormatError> {
    if site as usize >= dict.len() {
        return Err(TraceFormatError::BadSite(site));
    }
    *prev = site;
    out.push(TraceEvent::Branch { site, taken });
    Ok(())
}

/// Decodes a complete trace stream: header, dictionary, and every block.
///
/// # Errors
///
/// Returns [`TraceFormatError`] on a bad header, a truncated dictionary,
/// block, or event, a reserved event byte, or a site id outside the
/// dictionary — decoding never panics on hostile bytes.
pub fn decode_trace(bytes: &[u8]) -> Result<(SiteDict, Vec<TraceEvent>), TraceFormatError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(TraceFormatError::BadHeader);
    }
    let (dict, mut pos) = SiteDict::decode_from(bytes, 5)?;
    let mut events = Vec::new();
    while pos < bytes.len() {
        let (len, p) = leb128::read_u32(bytes, pos)
            .map_err(|_| TraceFormatError::Truncated("block length"))?;
        pos = p;
        let end = pos.checked_add(len as usize).ok_or(TraceFormatError::BadBlockLength)?;
        if len == 0 || end > bytes.len() {
            return Err(TraceFormatError::BadBlockLength);
        }
        decode_block(&bytes[pos..end], &dict, &mut events)?;
        pos = end;
    }
    Ok((dict, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(n: u32) -> SiteDict {
        SiteDict::from_locations((0..n).map(|i| Location { func: i / 7, pc: (i % 7) * 3 }))
    }

    fn round_trip(dict: &SiteDict, events: &[TraceEvent]) -> Vec<TraceEvent> {
        let mut bytes = Vec::new();
        encode_header(dict, &mut bytes);
        let mut payload = Vec::new();
        let mut prev = 0u32;
        for e in events {
            encode_event(e, &mut prev, &mut payload);
        }
        if !payload.is_empty() {
            leb128::write_u32(&mut bytes, payload.len() as u32);
            bytes.extend_from_slice(&payload);
        }
        let (d, got) = decode_trace(&bytes).expect("round trip decodes");
        assert_eq!(&d, dict);
        got
    }

    #[test]
    fn zigzag_inverts() {
        for v in [0i32, 1, -1, 16, -16, 4095, -4096, i32::MAX, i32::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn entry_width_matches_delta_magnitude() {
        let enc = |site: u32, prev: &mut u32| {
            let mut out = Vec::new();
            encode_event(&TraceEvent::Branch { site, taken: true }, prev, &mut out);
            out.len()
        };
        // Same site re-fires (a loop back-edge): 1 byte.
        let mut prev = 5;
        assert_eq!(enc(5, &mut prev), 1);
        // Nearby interleavings stay at 1 byte up to ±16 ...
        assert_eq!(enc(5 + 15, &mut prev), 1);
        assert_eq!(enc(5 + 15 - 16, &mut prev), 1);
        // ... medium hops take 2 (delta range is [-4096, 4095]) ...
        assert_eq!(enc(4 + 4095, &mut prev), 2);
        prev = 4100;
        assert_eq!(enc(4100 - 4096, &mut prev), 2);
        // ... and a far jump escapes to the tagged form.
        assert!(enc(19_000, &mut prev) > 2);
    }

    #[test]
    fn mixed_events_round_trip() {
        let d = dict(100);
        let events = vec![
            TraceEvent::FuncEnter { func: 3 },
            TraceEvent::Branch { site: 0, taken: true },
            TraceEvent::Branch { site: 0, taken: false },
            TraceEvent::Call { callee: 9 },
            TraceEvent::Branch { site: 42, taken: true },
            TraceEvent::Return { func: 9 },
            TraceEvent::Branch { site: 41, taken: false },
            TraceEvent::Call { callee: INDIRECT_CALLEE },
            TraceEvent::FuncExit { func: 3 },
        ];
        assert_eq!(round_trip(&d, &events), events);
    }

    #[test]
    fn deterministic_pseudorandom_round_trip() {
        // A seeded LCG sweep over delta edge cases: dense loops, ±16/±4096
        // boundary hops, and absolute escapes, with every event kind mixed
        // in. No external proptest crate — the workspace is dependency-free
        // — but the sweep is wide and fully reproducible.
        let d = dict(12_000);
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let mut prev_site = 0u32;
        for case in 0..200 {
            let mut events = Vec::new();
            for _ in 0..((case % 37) + 1) * 7 {
                let e = match rng() % 10 {
                    // Branch-heavy mix: mostly small deltas, some wild.
                    0..=5 => {
                        let step = match rng() % 4 {
                            0 => 0,
                            1 => (rng() % 33) as i64 - 16,
                            2 => (rng() % 8193) as i64 - 4096,
                            _ => i64::from(rng() % 12_000) - i64::from(prev_site),
                        };
                        let site = (i64::from(prev_site) + step)
                            .clamp(0, i64::from(d.len() as u32) - 1)
                            as u32;
                        prev_site = site;
                        TraceEvent::Branch { site, taken: rng() % 2 == 0 }
                    }
                    6 => TraceEvent::FuncEnter { func: rng() % 500 },
                    7 => TraceEvent::FuncExit { func: rng() % 500 },
                    8 => TraceEvent::Call {
                        callee: if rng() % 5 == 0 { INDIRECT_CALLEE } else { rng() % 500 },
                    },
                    _ => TraceEvent::Return { func: rng() % 500 },
                };
                events.push(e);
            }
            assert_eq!(round_trip(&d, &events), events, "case {case}");
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let d = dict(64);
        let mut bytes = Vec::new();
        encode_header(&d, &mut bytes);
        let mut payload = Vec::new();
        let mut prev = 0;
        for i in 0..50u32 {
            encode_event(
                &TraceEvent::Branch { site: i, taken: i % 2 == 0 },
                &mut prev,
                &mut payload,
            );
            encode_event(&TraceEvent::Call { callee: i }, &mut prev, &mut payload);
        }
        leb128::write_u32(&mut bytes, payload.len() as u32);
        bytes.extend_from_slice(&payload);
        assert!(decode_trace(&bytes).is_ok());
        // Every strict prefix errors cleanly — except the one landing
        // exactly on the header/block boundary, which is a valid empty
        // trace (that boundary is what makes mid-stream rotation legal).
        let mut header = Vec::new();
        encode_header(&d, &mut header);
        for cut in 0..bytes.len() {
            if let Ok((_, events)) = decode_trace(&bytes[..cut]) {
                assert_eq!(cut, header.len(), "unexpected valid prefix at {cut}");
                assert!(events.is_empty());
            }
        }
        // Corrupting the frame length to overrun the stream is caught.
        let mut huge = Vec::new();
        encode_header(&d, &mut huge);
        leb128::write_u32(&mut huge, 1_000_000);
        huge.push(0b11);
        assert_eq!(decode_trace(&huge), Err(TraceFormatError::BadBlockLength));
        // Reserved shape byte.
        let mut bad = Vec::new();
        encode_header(&d, &mut bad);
        leb128::write_u32(&mut bad, 1);
        bad.push(0b10);
        assert!(matches!(decode_trace(&bad), Err(TraceFormatError::BadEvent(_))));
        // Site id past the dictionary.
        let mut oob = Vec::new();
        encode_header(&d, &mut oob);
        let mut payload = Vec::new();
        let mut prev = 0;
        encode_event(&TraceEvent::Branch { site: 64, taken: true }, &mut prev, &mut payload);
        leb128::write_u32(&mut oob, payload.len() as u32);
        oob.extend_from_slice(&payload);
        assert_eq!(decode_trace(&oob), Err(TraceFormatError::BadSite(64)));
    }

    #[test]
    fn blocks_decode_independently() {
        // The delta state resets per block: splitting one event sequence
        // across two frames decodes to the same events as one frame.
        let d = dict(5000);
        let a = [
            TraceEvent::Branch { site: 4000, taken: true },
            TraceEvent::Branch { site: 4001, taken: false },
        ];
        let b = [
            TraceEvent::Branch { site: 4002, taken: true },
            TraceEvent::Branch { site: 10, taken: true },
        ];
        let mut split = Vec::new();
        encode_header(&d, &mut split);
        for half in [&a[..], &b[..]] {
            let mut payload = Vec::new();
            let mut prev = 0;
            for e in half {
                encode_event(e, &mut prev, &mut payload);
            }
            leb128::write_u32(&mut split, payload.len() as u32);
            split.extend_from_slice(&payload);
        }
        let (_, got) = decode_trace(&split).unwrap();
        let all: Vec<TraceEvent> = a.iter().chain(&b).copied().collect();
        assert_eq!(got, all);
    }

    #[test]
    fn dict_round_trips_and_indexes() {
        let d = dict(300);
        let mut bytes = Vec::new();
        encode_header(&d, &mut bytes);
        let (d2, events) = decode_trace(&bytes).unwrap();
        assert_eq!(d2, d);
        assert!(events.is_empty());
        for (i, loc) in d.locations().iter().enumerate() {
            assert_eq!(d.id_of(*loc), Some(i as u32));
            assert_eq!(d.location(i as u32), Some(*loc));
        }
        assert_eq!(d.location(300), None);
        assert_eq!(d.id_of(Location { func: 999, pc: 999 }), None);
    }
}
