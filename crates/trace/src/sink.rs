//! Trace sinks: where encoded blocks go.
//!
//! The writer hands sinks whole framed chunks (header, then
//! length-prefixed blocks), never partial events, so any sink can rotate
//! or ship mid-stream at a chunk boundary and the receiving side still
//! holds a decodable prefix.

use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::rc::Rc;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};

/// A destination for encoded trace chunks.
pub trait TraceSink {
    /// Receives one framed chunk (the header or a complete block).
    fn write(&mut self, chunk: &[u8]) -> io::Result<()>;

    /// Flushes any sink-side buffering; called when the writer finishes.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-memory sink accumulating the whole stream in a shared buffer.
///
/// The buffer handle survives the monitor that owns the sink: clone
/// [`MemorySink::handle`] before attaching, read it after detach.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    buf: Rc<RefCell<Vec<u8>>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A shared handle onto the accumulated bytes.
    pub fn handle(&self) -> Rc<RefCell<Vec<u8>>> {
        Rc::clone(&self.buf)
    }

    /// Copies the accumulated bytes out.
    pub fn data(&self) -> Vec<u8> {
        self.buf.borrow().clone()
    }
}

impl TraceSink for MemorySink {
    fn write(&mut self, chunk: &[u8]) -> io::Result<()> {
        self.buf.borrow_mut().extend_from_slice(chunk);
        Ok(())
    }
}

/// A buffered file sink.
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
}

impl FileSink {
    /// Creates (truncating) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<FileSink> {
        Ok(FileSink { out: BufWriter::new(File::create(path)?) })
    }
}

impl TraceSink for FileSink {
    fn write(&mut self, chunk: &[u8]) -> io::Result<()> {
        self.out.write_all(chunk)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// A bounded-channel sink for cross-thread consumption: each chunk is
/// sent as one `Vec<u8>` message, so a consumer thread (for example, one
/// draining a wizard-pool shard's tracer) can decode or persist blocks
/// while the traced program keeps running.
///
/// A full channel applies backpressure by blocking the tracing thread; a
/// disconnected receiver surfaces as a [`io::ErrorKind::BrokenPipe`]
/// write error, which the writer records and reports at finish.
#[derive(Debug)]
pub struct ChannelSink {
    tx: SyncSender<Vec<u8>>,
}

impl ChannelSink {
    /// A sink/receiver pair with room for `bound` in-flight chunks.
    pub fn bounded(bound: usize) -> (ChannelSink, Receiver<Vec<u8>>) {
        let (tx, rx) = std::sync::mpsc::sync_channel(bound);
        (ChannelSink { tx }, rx)
    }
}

impl TraceSink for ChannelSink {
    fn write(&mut self, chunk: &[u8]) -> io::Result<()> {
        // Try the non-blocking path first so a healthy consumer costs one
        // enqueue; only block (backpressure) when the channel is full.
        match self.tx.try_send(chunk.to_vec()) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(chunk)) => self
                .tx
                .send(chunk)
                .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "trace receiver dropped")),
            Err(TrySendError::Disconnected(_)) => {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "trace receiver dropped"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_accumulates_across_handles() {
        let sink = MemorySink::new();
        let handle = sink.handle();
        let mut s = sink.clone();
        s.write(b"abc").unwrap();
        s.write(b"def").unwrap();
        assert_eq!(&*handle.borrow(), b"abcdef");
        assert_eq!(sink.data(), b"abcdef");
    }

    #[test]
    fn channel_sink_delivers_chunks_in_order() {
        let (mut sink, rx) = ChannelSink::bounded(4);
        sink.write(b"one").unwrap();
        sink.write(b"two").unwrap();
        drop(sink);
        let got: Vec<Vec<u8>> = rx.iter().collect();
        assert_eq!(got, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn channel_sink_reports_dropped_receiver() {
        let (mut sink, rx) = ChannelSink::bounded(1);
        drop(rx);
        let err = sink.write(b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn file_sink_round_trips_bytes() {
        let path = std::env::temp_dir().join("wizard_trace_file_sink_test.bin");
        {
            let mut sink = FileSink::create(&path).unwrap();
            sink.write(b"hello ").unwrap();
            sink.write(b"trace").unwrap();
            sink.flush().unwrap();
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"hello trace");
        let _ = std::fs::remove_file(&path);
    }
}
