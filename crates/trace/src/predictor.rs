//! Offline branch-predictor simulation over captured traces.
//!
//! Replays the branch events of a decoded trace through two classic
//! baseline predictors — a **2-bit bimodal** table and a **gshare**
//! (global-history XOR) table — reporting aggregate and per-site
//! mispredict rates, in the spirit of the championship-branch-prediction
//! workflow the trace format is modeled on.

use crate::format::{SiteDict, TraceEvent};
use wizard_engine::Location;

/// Simulator sizing.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// log2 of the prediction-table size (both predictors).
    pub table_bits: u32,
    /// Global-history length in bits (gshare only).
    pub history_bits: u32,
}

impl Default for PredictorConfig {
    fn default() -> PredictorConfig {
        PredictorConfig { table_bits: 12, history_bits: 12 }
    }
}

/// Per-site simulation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteOutcome {
    /// Dictionary site id.
    pub site: u32,
    /// Site location (from the trace's dictionary).
    pub loc: Location,
    /// Times this branch executed.
    pub executed: u64,
    /// Times it was taken.
    pub taken: u64,
    /// Bimodal mispredictions at this site.
    pub bimodal_miss: u64,
    /// Gshare mispredictions at this site.
    pub gshare_miss: u64,
}

/// Aggregate simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReport {
    /// Total branch events replayed.
    pub branches: u64,
    /// Total bimodal mispredictions.
    pub bimodal_miss: u64,
    /// Total gshare mispredictions.
    pub gshare_miss: u64,
    /// Per-site outcomes for every executed site, in site-id order.
    pub sites: Vec<SiteOutcome>,
}

impl PredictionReport {
    /// Bimodal mispredict rate in [0, 1].
    pub fn bimodal_rate(&self) -> f64 {
        rate(self.bimodal_miss, self.branches)
    }

    /// Gshare mispredict rate in [0, 1].
    pub fn gshare_rate(&self) -> f64 {
        rate(self.gshare_miss, self.branches)
    }
}

fn rate(miss: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        miss as f64 / total as f64
    }
}

/// A saturating 2-bit counter bank predicting taken when the counter is
/// in the upper half.
struct TwoBit {
    table: Vec<u8>,
    mask: u32,
}

impl TwoBit {
    fn new(bits: u32) -> TwoBit {
        // Counters start weakly-taken (2), the conventional warm start.
        TwoBit { table: vec![2; 1 << bits], mask: (1u32 << bits) - 1 }
    }

    /// Predicts and trains in one step; returns the prediction made
    /// *before* the update.
    fn predict_update(&mut self, index: u32, taken: bool) -> bool {
        let c = &mut self.table[(index & self.mask) as usize];
        let predicted = *c >= 2;
        *c = if taken { (*c + 1).min(3) } else { c.saturating_sub(1) };
        predicted
    }
}

/// Replays a decoded trace through both predictors.
pub fn simulate(
    dict: &SiteDict,
    events: &[TraceEvent],
    config: PredictorConfig,
) -> PredictionReport {
    let mut bimodal = TwoBit::new(config.table_bits);
    let mut gshare = TwoBit::new(config.table_bits);
    let history_mask =
        if config.history_bits >= 32 { u32::MAX } else { (1u32 << config.history_bits) - 1 };
    let mut history = 0u32;
    let mut per_site: Vec<(u64, u64, u64, u64)> = vec![(0, 0, 0, 0); dict.len()];
    let mut branches = 0u64;
    let (mut b_miss, mut g_miss) = (0u64, 0u64);

    for e in events {
        let TraceEvent::Branch { site, taken } = *e else { continue };
        branches += 1;
        // The site id is the "pc" both predictors hash on: ids are dense
        // and code-ordered, so nearby branches map to nearby rows, as
        // instruction addresses would.
        let b_ok = bimodal.predict_update(site, taken) == taken;
        let g_ok = gshare.predict_update(site ^ (history & history_mask), taken) == taken;
        history = (history << 1) | u32::from(taken);
        let s = &mut per_site[site as usize];
        s.0 += 1;
        s.1 += u64::from(taken);
        s.2 += u64::from(!b_ok);
        s.3 += u64::from(!g_ok);
        b_miss += u64::from(!b_ok);
        g_miss += u64::from(!g_ok);
    }

    let sites = per_site
        .into_iter()
        .enumerate()
        .filter(|(_, (executed, ..))| *executed > 0)
        .map(|(site, (executed, taken, bimodal_miss, gshare_miss))| SiteOutcome {
            site: site as u32,
            loc: dict.location(site as u32).expect("site in dictionary"),
            executed,
            taken,
            bimodal_miss,
            gshare_miss,
        })
        .collect();

    PredictionReport { branches, bimodal_miss: b_miss, gshare_miss: g_miss, sites }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(n: u32) -> SiteDict {
        SiteDict::from_locations((0..n).map(|pc| Location { func: 0, pc }))
    }

    fn branches(seq: &[(u32, bool)]) -> Vec<TraceEvent> {
        seq.iter().map(|&(site, taken)| TraceEvent::Branch { site, taken }).collect()
    }

    #[test]
    fn monotone_branch_converges_to_zero_misses() {
        // Always-taken: after warm-up the bimodal counter saturates and
        // never mispredicts again.
        let events = branches(&vec![(0, true); 1000]);
        let r = simulate(&dict(1), &events, PredictorConfig::default());
        assert_eq!(r.branches, 1000);
        assert!(r.bimodal_miss <= 1, "bimodal misses: {}", r.bimodal_miss);
        assert!(r.gshare_miss <= 1);
        assert_eq!(r.sites.len(), 1);
        assert_eq!(r.sites[0].executed, 1000);
        assert_eq!(r.sites[0].taken, 1000);
    }

    #[test]
    fn gshare_learns_patterns_bimodal_cannot() {
        // Strictly alternating T/N/T/N: bimodal hovers near 50% miss;
        // gshare keys on the history and learns it nearly perfectly.
        let events = branches(&(0..2000).map(|i| (0, i % 2 == 0)).collect::<Vec<_>>());
        let r = simulate(&dict(1), &events, PredictorConfig::default());
        assert!(r.bimodal_rate() > 0.4, "bimodal rate {}", r.bimodal_rate());
        assert!(r.gshare_rate() < 0.05, "gshare rate {}", r.gshare_rate());
    }

    #[test]
    fn simulation_is_deterministic() {
        let events = branches(&(0..500).map(|i| (i % 7, i % 3 != 0)).collect::<Vec<_>>());
        let a = simulate(&dict(7), &events, PredictorConfig::default());
        let b = simulate(&dict(7), &events, PredictorConfig::default());
        assert_eq!(a, b);
        assert_eq!(a.sites.len(), 7);
    }
}
