//! SimPoint-style phase detection over captured traces.
//!
//! The trace's branch stream is sliced into fixed-size execution
//! **windows** (the trace-side analogue of fuel slices); each window is
//! summarized as a **basic-block vector** (BBV) — how often each CFG
//! block (or raw branch site) executed in the window — and the windows
//! are clustered with a deterministic k-medoids pass. Each resulting
//! cluster is a program *phase*; its medoid window is the
//! representative simulation point.

use std::collections::HashMap;

use wizard_analysis::cfg::Cfg;
use wizard_wasm::module::Module;
use wizard_wasm::validate::validate;

use crate::format::{SiteDict, TraceEvent};

/// Phase-detection parameters.
#[derive(Debug, Clone, Copy)]
pub struct PhaseConfig {
    /// Branch events per window.
    pub interval: usize,
    /// Number of phases (clusters) to find; clamped to the window count.
    pub k: usize,
    /// k-medoids refinement iteration cap.
    pub max_iters: usize,
}

impl Default for PhaseConfig {
    fn default() -> PhaseConfig {
        PhaseConfig { interval: 10_000, k: 4, max_iters: 20 }
    }
}

/// One detected phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Index of the medoid (representative) window.
    pub medoid: usize,
    /// Indices of all windows assigned to this phase.
    pub windows: Vec<usize>,
    /// Fraction of all windows in this phase.
    pub weight: f64,
}

/// The phase-detection result.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Number of windows the trace sliced into.
    pub windows: usize,
    /// BBV dimensionality (CFG blocks or sites).
    pub dims: usize,
    /// Phase assignment per window.
    pub assignments: Vec<usize>,
    /// The phases, ordered by descending weight.
    pub phases: Vec<Phase>,
}

/// Maps every dictionary site to a BBV dimension.
///
/// With a module, sites collapse onto the CFG basic block that contains
/// them (via `wizard-analysis`), so the vectors measure *block*
/// execution like classic SimPoint BBVs; without one, each site is its
/// own dimension.
#[derive(Debug, Clone)]
pub struct BbvSpace {
    site_dim: Vec<u32>,
    dims: usize,
}

impl BbvSpace {
    /// One dimension per dictionary site.
    pub fn per_site(dict: &SiteDict) -> BbvSpace {
        BbvSpace { site_dim: (0..dict.len() as u32).collect(), dims: dict.len() }
    }

    /// One dimension per `(function, CFG block)` pair containing at
    /// least one dictionary site, recovered from the module with
    /// `wizard-analysis`.
    ///
    /// # Panics
    ///
    /// Panics if the module does not validate or the dictionary names a
    /// site outside it — analyzers hold the module the trace came from.
    pub fn cfg_blocks(module: &Module, dict: &SiteDict) -> BbvSpace {
        let meta = validate(module).expect("module was validated");
        let n_imp = module.num_imported_funcs();
        // (func, block) → dense dimension, assigned in site order.
        let mut block_dim: HashMap<(u32, usize), u32> = HashMap::new();
        let mut pc_block: HashMap<u32, HashMap<u32, usize>> = HashMap::new();
        let mut site_dim = Vec::with_capacity(dict.len());
        for loc in dict.locations() {
            let by_pc = pc_block.entry(loc.func).or_insert_with(|| {
                let local = (loc.func - n_imp) as usize;
                let cfg = Cfg::build(&module.funcs[local].body.code, &meta.funcs[local]);
                (0..cfg.instrs.len()).map(|i| (cfg.instrs[i].pc, cfg.block_of_instr(i))).collect()
            });
            let block = *by_pc.get(&loc.pc).expect("dictionary site exists in module");
            let next = block_dim.len() as u32;
            let dim = *block_dim.entry((loc.func, block)).or_insert(next);
            site_dim.push(dim);
        }
        let dims = block_dim.len();
        BbvSpace { site_dim, dims }
    }

    /// BBV dimensionality.
    pub fn dims(&self) -> usize {
        self.dims
    }
}

/// Slices the branch stream into windows of `interval` events and
/// accumulates each into a normalized BBV (a trailing partial window is
/// kept — it is a phase sample like any other).
pub fn bbv_windows(space: &BbvSpace, events: &[TraceEvent], interval: usize) -> Vec<Vec<f64>> {
    let interval = interval.max(1);
    let mut windows = Vec::new();
    let mut current = vec![0u64; space.dims];
    let mut count = 0usize;
    for e in events {
        let TraceEvent::Branch { site, .. } = *e else { continue };
        current[space.site_dim[site as usize] as usize] += 1;
        count += 1;
        if count == interval {
            windows.push(normalize(&current));
            current.iter_mut().for_each(|c| *c = 0);
            count = 0;
        }
    }
    if count > 0 {
        windows.push(normalize(&current));
    }
    windows
}

fn normalize(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    let total = total.max(1) as f64;
    counts.iter().map(|&c| c as f64 / total).collect()
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Clusters BBV windows with deterministic k-medoids: greedy k-center
/// seeding (first window, then repeatedly the window farthest from its
/// nearest seed, lowest index on ties) followed by alternating
/// assign/update passes until stable.
pub fn detect_phases(windows: &[Vec<f64>], config: PhaseConfig) -> PhaseReport {
    let n = windows.len();
    let dims = windows.first().map_or(0, Vec::len);
    let k = config.k.clamp(1, n.max(1));
    if n == 0 {
        return PhaseReport { windows: 0, dims, assignments: Vec::new(), phases: Vec::new() };
    }

    // Greedy k-center seeding.
    let mut medoids = vec![0usize];
    while medoids.len() < k {
        let mut best = (0usize, -1.0f64);
        for (i, w) in windows.iter().enumerate() {
            let d = medoids.iter().map(|&m| l1(w, &windows[m])).fold(f64::MAX, f64::min);
            if d > best.1 {
                best = (i, d);
            }
        }
        if best.1 <= 0.0 {
            break; // fewer distinct windows than k
        }
        medoids.push(best.0);
    }

    let assign = |medoids: &[usize]| -> Vec<usize> {
        windows
            .iter()
            .map(|w| {
                let mut best = (0usize, f64::MAX);
                for (c, &m) in medoids.iter().enumerate() {
                    let d = l1(w, &windows[m]);
                    if d < best.1 {
                        best = (c, d);
                    }
                }
                best.0
            })
            .collect()
    };

    let mut assignments = assign(&medoids);
    for _ in 0..config.max_iters {
        // Update: each cluster's new medoid is its member minimizing the
        // total distance to the rest of the cluster (lowest index ties).
        let mut next = medoids.clone();
        for (c, slot) in next.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = (*slot, f64::MAX);
            for &cand in &members {
                let cost: f64 = members.iter().map(|&m| l1(&windows[cand], &windows[m])).sum();
                if cost < best.1 {
                    best = (cand, cost);
                }
            }
            *slot = best.0;
        }
        if next == medoids {
            break;
        }
        medoids = next;
        assignments = assign(&medoids);
    }

    let mut phases: Vec<Phase> = medoids
        .iter()
        .enumerate()
        .map(|(c, &m)| {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
            let weight = members.len() as f64 / n as f64;
            Phase { medoid: m, windows: members, weight }
        })
        .filter(|p| !p.windows.is_empty())
        .collect();
    // Order by weight (descending), medoid index breaking ties, then
    // renumber assignments to match.
    phases.sort_by(|a, b| {
        b.weight.partial_cmp(&a.weight).expect("weights are finite").then(a.medoid.cmp(&b.medoid))
    });
    let mut renumbered = vec![0usize; n];
    for (c, p) in phases.iter().enumerate() {
        for &w in &p.windows {
            renumbered[w] = c;
        }
    }

    PhaseReport { windows: n, dims, assignments: renumbered, phases }
}

/// Convenience: windows + clustering in one call.
pub fn analyze(space: &BbvSpace, events: &[TraceEvent], config: PhaseConfig) -> PhaseReport {
    detect_phases(&bbv_windows(space, events, config.interval), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wizard_engine::Location;

    fn dict(n: u32) -> SiteDict {
        SiteDict::from_locations((0..n).map(|pc| Location { func: 0, pc }))
    }

    fn phase_events(site: u32, n: usize) -> Vec<TraceEvent> {
        (0..n).map(|i| TraceEvent::Branch { site, taken: i % 2 == 0 }).collect()
    }

    #[test]
    fn two_alternating_phases_are_separated() {
        // 4 windows hammering site 0, then 4 hammering site 5, twice over.
        let d = dict(6);
        let space = BbvSpace::per_site(&d);
        let mut events = Vec::new();
        for _ in 0..2 {
            events.extend(phase_events(0, 400));
            events.extend(phase_events(5, 400));
        }
        let r = analyze(&space, &events, PhaseConfig { interval: 100, k: 2, max_iters: 20 });
        assert_eq!(r.windows, 16);
        assert_eq!(r.phases.len(), 2);
        // Windows 0-3 and 8-11 share a phase; 4-7 and 12-15 the other.
        assert_eq!(r.assignments[0], r.assignments[8]);
        assert_eq!(r.assignments[4], r.assignments[12]);
        assert_ne!(r.assignments[0], r.assignments[4]);
        let total: f64 = r.phases.iter().map(|p| p.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_is_deterministic() {
        let d = dict(10);
        let space = BbvSpace::per_site(&d);
        let mut events = Vec::new();
        for i in 0..3000u32 {
            events.push(TraceEvent::Branch { site: (i * 7 + i / 100) % 10, taken: i % 3 == 0 });
        }
        let cfg = PhaseConfig { interval: 250, k: 3, max_iters: 20 };
        let a = analyze(&space, &events, cfg);
        let b = analyze(&space, &events, cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let d = dict(1);
        let space = BbvSpace::per_site(&d);
        let r = analyze(&space, &[], PhaseConfig::default());
        assert_eq!(r.windows, 0);
        assert!(r.phases.is_empty());
        // One uniform window, k larger than the window count.
        let r = analyze(
            &space,
            &phase_events(0, 10),
            PhaseConfig { interval: 100, k: 5, max_iters: 5 },
        );
        assert_eq!(r.windows, 1);
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0].weight, 1.0);
    }
}
