//! **wizard-trace** — compact streaming trace capture and offline
//! analysis.
//!
//! The engine-integrated monitors observe execution in process; this
//! crate gets the event stream *out* at production rates and analyzes
//! it offline, turning the engine into a trace-driven research
//! platform:
//!
//! * [`mod@format`] — the compact binary trace format: per-module site
//!   dictionary, delta-encoded branch entries (1–2 bytes in the common
//!   case), call/return and function-boundary records, independent
//!   block frames.
//! * [`sink`] — where encoded blocks go: memory, buffered file, or a
//!   bounded channel for cross-thread consumption (e.g. draining
//!   wizard-pool shards).
//! * [`writer`] / [`monitor`] — the streaming side:
//!   [`StreamingTraceMonitor`] lowers branch sites onto intrinsifiable
//!   operand probes through the standard monitor lifecycle (one
//!   [`ProbeBatch`](wizard_engine::ProbeBatch) at attach, baseline
//!   restored at detach, counters credited to
//!   [`EngineStats`](wizard_engine::EngineStats)).
//! * [`predictor`] — offline branch-predictor simulation (2-bit
//!   bimodal + gshare) over captured traces.
//! * [`phases`] — SimPoint-style phase detection: BBV windows over the
//!   branch stream (optionally collapsed onto `wizard-analysis` CFG
//!   blocks), clustered with deterministic k-medoids.

#![warn(missing_docs)]

pub mod capture;
pub mod format;
pub mod monitor;
pub mod phases;
pub mod predictor;
pub mod sink;
pub mod writer;

pub use format::{decode_trace, SiteDict, TraceEvent, TraceFormatError, INDIRECT_CALLEE};
pub use monitor::{BranchTraceProbe, StreamingTraceMonitor, TraceConfig, WriterRef};
pub use sink::{ChannelSink, FileSink, MemorySink, TraceSink};
pub use writer::{TraceCounters, TraceWriter};
