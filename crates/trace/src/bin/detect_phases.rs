//! SimPoint-style phase detection over a wizard trace.
//!
//! ```text
//! detect_phases [WORKLOAD-OR-TRACE-FILE] [INTERVAL] [K]
//! ```
//!
//! The first argument is either a `wizard_suites::corpus` workload name
//! (traced in-process at test scale, with BBVs over `wizard-analysis`
//! CFG blocks) or a path to a captured trace file (BBVs over raw branch
//! sites, since no module is at hand). Default: `crc32`.

use wizard_engine::EngineConfig;
use wizard_trace::capture::{capture_corpus, corpus_names};
use wizard_trace::format::decode_trace;
use wizard_trace::phases::{analyze, BbvSpace, PhaseConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let arg = args.next().unwrap_or_else(|| "crc32".to_string());
    let mut config = PhaseConfig { interval: 1000, ..PhaseConfig::default() };
    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
        config.interval = v;
    }
    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
        config.k = v;
    }

    let (name, space, events, space_kind) = if std::path::Path::new(&arg).is_file() {
        let bytes = std::fs::read(&arg).unwrap_or_else(|e| {
            eprintln!("error: cannot read {arg}: {e}");
            std::process::exit(1);
        });
        let (dict, events) = decode_trace(&bytes).unwrap_or_else(|e| {
            eprintln!("error: {arg}: {e}");
            std::process::exit(1);
        });
        (arg.clone(), BbvSpace::per_site(&dict), events, "branch sites")
    } else {
        let cap = capture_corpus(&arg, EngineConfig::interpreter()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!(
                "usage: detect_phases [{}|TRACE-FILE] [INTERVAL] [K]",
                corpus_names().join("|")
            );
            std::process::exit(1);
        });
        let space = BbvSpace::cfg_blocks(&cap.module, &cap.dict);
        println!(
            "captured {}: {} events, {} branches, {} bytes",
            cap.name, cap.counters.events, cap.counters.branches, cap.counters.bytes
        );
        (cap.name, space, cap.events, "cfg blocks")
    };

    let r = analyze(&space, &events, config);
    println!("== phase detection: {name} ==");
    println!(
        "windows: {} x {} branches, bbv dims: {} ({space_kind}), k: {}",
        r.windows,
        config.interval,
        space.dims(),
        config.k
    );
    for (i, p) in r.phases.iter().enumerate() {
        println!(
            "phase {i}: weight {:.3}, medoid window {}, {} windows",
            p.weight,
            p.medoid,
            p.windows.len()
        );
    }
    // Run-length render of the assignment timeline, e.g. "0x12 1x3 0x4".
    let mut timeline = String::new();
    let mut run: Option<(usize, usize)> = None;
    for &a in r.assignments.iter().chain(std::iter::once(&usize::MAX)) {
        match run {
            Some((phase, len)) if phase == a => run = Some((phase, len + 1)),
            Some((phase, len)) => {
                if !timeline.is_empty() {
                    timeline.push(' ');
                }
                timeline.push_str(&format!("{phase}x{len}"));
                run = Some((a, 1));
            }
            None => run = Some((a, 1)),
        }
    }
    println!("timeline: {timeline}");
}
