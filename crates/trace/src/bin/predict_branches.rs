//! Offline branch-predictor simulation over a wizard trace.
//!
//! ```text
//! predict_branches [WORKLOAD-OR-TRACE-FILE]
//! ```
//!
//! The argument is either a `wizard_suites::corpus` workload name (the
//! trace is captured in-process, deterministically, at test scale) or a
//! path to a previously captured trace file. Default: `crc32`.

use wizard_engine::EngineConfig;
use wizard_trace::capture::{capture_corpus, corpus_names};
use wizard_trace::format::decode_trace;
use wizard_trace::predictor::{simulate, PredictorConfig};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "crc32".to_string());
    let (name, dict, events) = if std::path::Path::new(&arg).is_file() {
        let bytes = std::fs::read(&arg).unwrap_or_else(|e| {
            eprintln!("error: cannot read {arg}: {e}");
            std::process::exit(1);
        });
        let (dict, events) = decode_trace(&bytes).unwrap_or_else(|e| {
            eprintln!("error: {arg}: {e}");
            std::process::exit(1);
        });
        (arg.clone(), dict, events)
    } else {
        let cap = capture_corpus(&arg, EngineConfig::interpreter()).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("usage: predict_branches [{}|TRACE-FILE]", corpus_names().join("|"));
            std::process::exit(1);
        });
        println!(
            "captured {}: {} events, {} branches, {} bytes ({:.3} bytes/branch)",
            cap.name,
            cap.counters.events,
            cap.counters.branches,
            cap.counters.bytes,
            cap.counters.bytes as f64 / cap.counters.branches.max(1) as f64,
        );
        (cap.name, cap.dict, cap.events)
    };

    let config = PredictorConfig::default();
    let r = simulate(&dict, &events, config);
    println!("== branch prediction: {name} ==");
    println!("sites: {} in dictionary, {} executed", dict.len(), r.sites.len());
    println!("branches: {}", r.branches);
    println!(
        "bimodal ({} entries): {} mispredicts, rate {:.4}",
        1u64 << config.table_bits,
        r.bimodal_miss,
        r.bimodal_rate()
    );
    println!(
        "gshare  ({} entries, {}-bit history): {} mispredicts, rate {:.4}",
        1u64 << config.table_bits,
        config.history_bits,
        r.gshare_miss,
        r.gshare_rate()
    );

    let mut worst = r.sites.clone();
    worst.sort_by(|a, b| b.gshare_miss.cmp(&a.gshare_miss).then(a.site.cmp(&b.site)));
    println!("hardest sites (by gshare mispredicts):");
    for s in worst.iter().take(10) {
        println!(
            "  site {:>4} {}  executed {:>9}  taken {:>9}  bimodal-miss {:>7}  gshare-miss {:>7}",
            s.site, s.loc, s.executed, s.taken, s.bimodal_miss, s.gshare_miss
        );
    }
}
