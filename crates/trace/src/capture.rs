//! Convenience capture: run a workload under the streaming tracer and
//! hand back the decoded trace — the shared front half of the offline
//! analyzer bins and the trace bench.

use wizard_engine::{EngineConfig, Process, Shims, Value};
use wizard_suites::corpus::corpus;
use wizard_suites::Scale;
use wizard_wasm::module::Module;

use crate::format::{decode_trace, SiteDict, TraceEvent};
use crate::monitor::StreamingTraceMonitor;
use crate::writer::TraceCounters;

/// A captured, decoded trace plus the module it came from.
pub struct Capture {
    /// Workload name.
    pub name: String,
    /// The traced module (for CFG-based analyses).
    pub module: Module,
    /// The trace's site dictionary.
    pub dict: SiteDict,
    /// The decoded event stream.
    pub events: Vec<TraceEvent>,
    /// Writer counters (events, branches, encoded bytes).
    pub counters: TraceCounters,
    /// The raw encoded stream.
    pub bytes: Vec<u8>,
}

/// Traces one invocation of `module`'s `run(n)` export under `config`.
///
/// # Errors
///
/// Returns a message on instantiation, trap, or decode failure.
pub fn capture_module(
    name: &str,
    module: Module,
    n: i32,
    config: EngineConfig,
) -> Result<Capture, String> {
    let shims = Shims::standard();
    let linker = shims.linker_for(&module).map_err(|e| format!("{name}: {e}"))?;
    let mut p =
        Process::new(module.clone(), config, &linker).map_err(|e| format!("{name}: {e}"))?;
    let mon = p
        .attach_monitor(StreamingTraceMonitor::in_memory())
        .map_err(|e| format!("{name}: attach: {e}"))?;
    p.invoke_export("run", &[Value::I32(n)]).map_err(|e| format!("{name}: run: {e}"))?;
    let handle = mon.handle();
    p.detach_monitor(handle).map_err(|e| format!("{name}: detach: {e}"))?;
    let bytes = mon.borrow().trace_data().expect("in-memory tracer");
    let counters = mon.borrow().counters();
    let (dict, events) = decode_trace(&bytes).map_err(|e| format!("{name}: decode: {e}"))?;
    Ok(Capture { name: name.to_string(), module, dict, events, counters, bytes })
}

/// Traces the named `wizard_suites::corpus` workload at test scale
/// (deterministic input, so the captured trace is reproducible).
///
/// # Errors
///
/// Returns a message naming the available workloads if `name` is
/// unknown, or a capture failure.
pub fn capture_corpus(name: &str, config: EngineConfig) -> Result<Capture, String> {
    let entries = corpus(Scale::Test);
    let names: Vec<&str> = entries.iter().map(|e| e.name).collect();
    let entry = entries.into_iter().find(|e| e.name == name).ok_or_else(|| {
        format!("unknown corpus module {name:?}; available: {}", names.join(", "))
    })?;
    capture_module(entry.name, entry.module, entry.n, config)
}

/// The corpus workload names, for CLI help text.
pub fn corpus_names() -> Vec<&'static str> {
    corpus(Scale::Test).iter().map(|e| e.name).collect()
}
