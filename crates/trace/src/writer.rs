//! The streaming trace writer: encodes events into block frames and
//! hands completed frames to a [`TraceSink`].

use std::io;

use wizard_wasm::leb128;

use crate::format::{encode_event, encode_header, SiteDict, TraceEvent};
use crate::sink::TraceSink;

/// Default block payload size before a frame is cut (64 KiB).
pub const DEFAULT_BLOCK_LIMIT: usize = 64 * 1024;

/// Counters accumulated by a [`TraceWriter`] over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Total events encoded (branches + calls + func enter/exit).
    pub events: u64,
    /// Branch events encoded (subset of `events`).
    pub branches: u64,
    /// Bytes handed to the sink, including stream header and block
    /// framing.
    pub bytes: u64,
}

/// Encodes [`TraceEvent`]s into the compact format, cutting a block
/// frame whenever the payload reaches the block limit (or at finish).
///
/// Probe fire paths cannot propagate errors, so sink failures are
/// latched: the first error is stored, subsequent events are dropped,
/// and [`TraceWriter::finish`] surfaces it.
pub struct TraceWriter {
    sink: Box<dyn TraceSink>,
    block: Vec<u8>,
    block_limit: usize,
    prev: u32,
    counters: TraceCounters,
    error: Option<io::Error>,
}

impl core::fmt::Debug for TraceWriter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("TraceWriter")
            .field("block_limit", &self.block_limit)
            .field("counters", &self.counters)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

impl TraceWriter {
    /// Creates a writer over `sink`, immediately emitting the stream
    /// header (magic, version, site dictionary).
    pub fn new(dict: &SiteDict, sink: Box<dyn TraceSink>) -> TraceWriter {
        TraceWriter::with_block_limit(dict, sink, DEFAULT_BLOCK_LIMIT)
    }

    /// Like [`TraceWriter::new`] with an explicit block payload limit.
    pub fn with_block_limit(
        dict: &SiteDict,
        sink: Box<dyn TraceSink>,
        block_limit: usize,
    ) -> TraceWriter {
        let mut w = TraceWriter {
            sink,
            block: Vec::with_capacity(block_limit.min(DEFAULT_BLOCK_LIMIT) + 16),
            block_limit: block_limit.max(1),
            prev: 0,
            counters: TraceCounters::default(),
            error: None,
        };
        let mut header = Vec::new();
        encode_header(dict, &mut header);
        w.send(&header);
        w
    }

    /// Records a branch outcome at dictionary site `site`.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool) {
        self.counters.branches += 1;
        self.emit(&TraceEvent::Branch { site, taken });
    }

    /// Records a function entry.
    pub fn func_enter(&mut self, func: u32) {
        self.emit(&TraceEvent::FuncEnter { func });
    }

    /// Records a function exit.
    pub fn func_exit(&mut self, func: u32) {
        self.emit(&TraceEvent::FuncExit { func });
    }

    /// Records a direct or indirect call.
    pub fn call(&mut self, callee: u32) {
        self.emit(&TraceEvent::Call { callee });
    }

    /// Records a return.
    pub fn ret(&mut self, func: u32) {
        self.emit(&TraceEvent::Return { func });
    }

    /// Encodes one event into the current block.
    #[inline]
    pub fn emit(&mut self, e: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        self.counters.events += 1;
        encode_event(e, &mut self.prev, &mut self.block);
        if self.block.len() >= self.block_limit {
            self.cut_block();
        }
    }

    /// Counters so far (bytes counts only what reached the sink; the
    /// open block is added at [`TraceWriter::finish`]).
    pub fn counters(&self) -> TraceCounters {
        self.counters
    }

    /// Flushes the open block (if any) and the sink, returning the final
    /// counters or the first sink error encountered during the stream.
    pub fn finish(&mut self) -> io::Result<TraceCounters> {
        if !self.block.is_empty() {
            self.cut_block();
        }
        if self.error.is_none() {
            if let Err(e) = self.sink.flush() {
                self.error = Some(e);
            }
        }
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.counters),
        }
    }

    fn cut_block(&mut self) {
        let mut frame = Vec::with_capacity(self.block.len() + 5);
        leb128::write_u32(&mut frame, self.block.len() as u32);
        frame.extend_from_slice(&self.block);
        self.block.clear();
        // Delta state restarts per block so frames decode independently.
        self.prev = 0;
        self.send(&frame);
    }

    fn send(&mut self, chunk: &[u8]) {
        if self.error.is_some() {
            return;
        }
        match self.sink.write(chunk) {
            Ok(()) => self.counters.bytes += chunk.len() as u64,
            Err(e) => self.error = Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::decode_trace;
    use crate::sink::MemorySink;
    use wizard_engine::Location;

    fn dict(n: u32) -> SiteDict {
        SiteDict::from_locations((0..n).map(|pc| Location { func: 0, pc }))
    }

    #[test]
    fn writer_output_decodes_across_block_cuts() {
        let sink = MemorySink::new();
        let handle = sink.handle();
        // A tiny block limit forces many frames mid-stream.
        let mut w = TraceWriter::with_block_limit(&dict(600), Box::new(sink), 7);
        let mut expect = Vec::new();
        for i in 0..500u32 {
            let (site, taken) = (i % 600, i % 3 == 0);
            w.branch(site, taken);
            expect.push(TraceEvent::Branch { site, taken });
        }
        w.call(42);
        expect.push(TraceEvent::Call { callee: 42 });
        let c = w.finish().unwrap();
        let bytes = handle.borrow().clone();
        assert_eq!(c.events, 501);
        assert_eq!(c.branches, 500);
        assert_eq!(c.bytes, bytes.len() as u64);
        let (_, events) = decode_trace(&bytes).unwrap();
        assert_eq!(events, expect);
    }

    #[test]
    fn sink_error_is_latched_and_surfaced_at_finish() {
        struct Failing;
        impl TraceSink for Failing {
            fn write(&mut self, _chunk: &[u8]) -> io::Result<()> {
                Err(io::Error::other("boom"))
            }
        }
        let mut w = TraceWriter::with_block_limit(&dict(4), Box::new(Failing), 4);
        for _ in 0..100 {
            w.branch(1, true);
        }
        assert!(w.finish().is_err());
    }
}
