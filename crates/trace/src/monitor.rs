//! The streaming trace monitor: lowers branch (and optionally call and
//! function-boundary) sites onto operand/generic probes that feed a
//! [`TraceWriter`] — one [`ProbeBatch`] at attach, baseline restored at
//! detach.

use std::cell::RefCell;
use std::rc::Rc;

use wizard_engine::{
    InstrumentationCtx, Location, Monitor, Probe, ProbeBatch, ProbeCtx, ProbeError, ProbeKind,
    Process, Report, Slot,
};
use wizard_wasm::instr::{Imm, InstrIter};
use wizard_wasm::opcodes as op;

use crate::format::{SiteDict, INDIRECT_CALLEE};
use crate::sink::{MemorySink, TraceSink};
use crate::writer::{TraceCounters, TraceWriter};

/// What the tracer captures. Branch capture is the always-on core;
/// calls and function boundaries are opt-in (they use generic probes,
/// which are costlier than intrinsified operand probes).
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Capture branch outcomes at every `if`/`br_if`/`br_table` site.
    pub branches: bool,
    /// Capture `call`/`call_indirect` events.
    pub calls: bool,
    /// Capture function enter/exit events.
    pub funcs: bool,
    /// Block payload limit handed to the [`TraceWriter`].
    pub block_limit: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            branches: true,
            calls: false,
            funcs: false,
            block_limit: crate::writer::DEFAULT_BLOCK_LIMIT,
        }
    }
}

/// Shared handle to a [`TraceWriter`], cloned into every probe.
pub type WriterRef = Rc<RefCell<TraceWriter>>;

/// The per-site branch probe: [`ProbeKind::Operand`], so the JIT
/// intrinsifies it into a direct call carrying the top-of-stack
/// condition (or `br_table` index) with no `ProbeCtx` reification.
///
/// Shared with wizard-script's `trace` action so scripted and
/// hand-attached tracers emit byte-identical streams.
#[derive(Debug)]
pub struct BranchTraceProbe {
    opcode: u8,
    site: u32,
    writer: WriterRef,
}

impl BranchTraceProbe {
    /// A probe recording outcomes of the branch with dictionary id
    /// `site` and opcode `opcode` into `writer`.
    pub fn new(opcode: u8, site: u32, writer: WriterRef) -> BranchTraceProbe {
        BranchTraceProbe { opcode, site, writer }
    }

    #[inline]
    fn record(&self, top: Slot) {
        // Same taken convention as the branch-profile monitor: br_table
        // is always taken, conditional branches on a non-zero condition.
        let taken = self.opcode == op::BR_TABLE || top.i32() != 0;
        self.writer.borrow_mut().branch(self.site, taken);
    }
}

impl Probe for BranchTraceProbe {
    fn fire(&mut self, ctx: &mut ProbeCtx<'_, '_>) {
        let top = ctx.top_of_stack().expect("branch has a condition operand");
        self.record(top);
    }

    fn kind(&self) -> ProbeKind {
        ProbeKind::Operand
    }

    fn fire_operand(&mut self, _loc: Location, top: Slot) {
        self.record(top);
    }
}

/// A generic probe emitting one fixed event when its site executes.
struct EventProbe {
    event: crate::format::TraceEvent,
    writer: WriterRef,
}

impl Probe for EventProbe {
    fn fire(&mut self, _ctx: &mut ProbeCtx<'_, '_>) {
        self.writer.borrow_mut().emit(&self.event);
    }
}

/// Streams a compact binary trace of branch outcomes (and optionally
/// calls and function boundaries) to a [`TraceSink`] while the traced
/// program runs.
///
/// Attach installs one probe per captured site in a single
/// [`ProbeBatch`]; detach finishes the writer (flushing the final block
/// and the sink) and credits the captured event/byte counts to the
/// process via [`Process::record_trace`].
pub struct StreamingTraceMonitor {
    config: TraceConfig,
    sink: Option<Box<dyn TraceSink>>,
    memory: Option<MemorySink>,
    writer: Option<WriterRef>,
    dict: SiteDict,
    final_counters: TraceCounters,
    error: Option<std::io::Error>,
}

impl StreamingTraceMonitor {
    /// A branch tracer writing to an internal [`MemorySink`]; read the
    /// captured stream with [`StreamingTraceMonitor::trace_data`] after
    /// detach.
    pub fn in_memory() -> StreamingTraceMonitor {
        let mem = MemorySink::new();
        StreamingTraceMonitor {
            config: TraceConfig::default(),
            sink: Some(Box::new(mem.clone())),
            memory: Some(mem),
            writer: None,
            dict: SiteDict::default(),
            final_counters: TraceCounters::default(),
            error: None,
        }
    }

    /// A branch tracer writing to `sink`.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> StreamingTraceMonitor {
        StreamingTraceMonitor {
            config: TraceConfig::default(),
            sink: Some(sink),
            memory: None,
            writer: None,
            dict: SiteDict::default(),
            final_counters: TraceCounters::default(),
            error: None,
        }
    }

    /// Replaces the capture configuration.
    pub fn with_config(mut self, config: TraceConfig) -> StreamingTraceMonitor {
        self.config = config;
        self
    }

    /// The site dictionary built at attach (empty before attach).
    pub fn dict(&self) -> &SiteDict {
        &self.dict
    }

    /// The captured stream, for monitors built with
    /// [`StreamingTraceMonitor::in_memory`]. Complete once detached.
    pub fn trace_data(&self) -> Option<Vec<u8>> {
        self.memory.as_ref().map(MemorySink::data)
    }

    /// Final writer counters; populated at detach.
    pub fn counters(&self) -> TraceCounters {
        match &self.writer {
            Some(w) => w.borrow().counters(),
            None => self.final_counters,
        }
    }

    /// The first sink error hit during the stream, if any (taken at
    /// detach; probe fire paths cannot propagate errors).
    pub fn sink_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }
}

impl Monitor for StreamingTraceMonitor {
    fn name(&self) -> &'static str {
        "streaming-trace"
    }

    fn on_attach(&mut self, ctx: &mut InstrumentationCtx<'_>) -> Result<(), ProbeError> {
        let module = ctx.module();
        // One static pass: the branch-site dictionary in code order, with
        // each site's opcode alongside for the probe's taken convention.
        let n_imp = module.num_imported_funcs();
        let mut branch_sites: Vec<(Location, u8)> = Vec::new();
        for (i, f) in module.funcs.iter().enumerate() {
            let func = n_imp + i as u32;
            for item in InstrIter::new(&f.body.code) {
                let instr = item.expect("module was validated");
                if matches!(instr.op, op::IF | op::BR_IF | op::BR_TABLE) {
                    branch_sites.push((Location { func, pc: instr.pc }, instr.op));
                }
            }
        }
        self.dict = SiteDict::from_locations(branch_sites.iter().map(|(l, _)| *l));
        let sink = self.sink.take().expect("streaming tracer cannot be re-attached");
        let writer: WriterRef = Rc::new(RefCell::new(TraceWriter::with_block_limit(
            &self.dict,
            sink,
            self.config.block_limit,
        )));

        let mut batch = ProbeBatch::new();
        if self.config.branches {
            for (site, (loc, opcode)) in branch_sites.iter().enumerate() {
                batch.add_local_val(
                    loc.func,
                    loc.pc,
                    BranchTraceProbe::new(*opcode, site as u32, Rc::clone(&writer)),
                );
            }
        }
        if self.config.calls || self.config.funcs {
            use crate::format::TraceEvent;
            for (i, f) in module.funcs.iter().enumerate() {
                let func = n_imp + i as u32;
                let mut first = true;
                for item in InstrIter::new(&f.body.code) {
                    let instr = item.expect("module was validated");
                    if self.config.funcs && first {
                        batch.add_local_val(
                            func,
                            instr.pc,
                            EventProbe {
                                event: TraceEvent::FuncEnter { func },
                                writer: Rc::clone(&writer),
                            },
                        );
                        first = false;
                    }
                    let event = match instr.op {
                        op::CALL if self.config.calls => {
                            let Imm::Idx(callee) = instr.imm else { unreachable!("call imm") };
                            Some(TraceEvent::Call { callee })
                        }
                        op::CALL_INDIRECT if self.config.calls => {
                            Some(TraceEvent::Call { callee: INDIRECT_CALLEE })
                        }
                        op::RETURN if self.config.funcs => Some(TraceEvent::Return { func }),
                        _ => None,
                    };
                    if let Some(event) = event {
                        batch.add_local_val(
                            func,
                            instr.pc,
                            EventProbe { event, writer: Rc::clone(&writer) },
                        );
                    }
                }
            }
        }
        ctx.apply_batch(batch)?;
        self.writer = Some(writer);
        Ok(())
    }

    fn on_detach(&mut self, process: &mut Process) {
        if let Some(writer) = self.writer.take() {
            let mut writer = writer.borrow_mut();
            match writer.finish() {
                Ok(counters) => self.final_counters = counters,
                Err(e) => {
                    self.final_counters = writer.counters();
                    self.error = Some(e);
                }
            }
            process.record_trace(self.final_counters.events, self.final_counters.bytes);
        }
    }

    fn report(&self) -> Report {
        let c = self.counters();
        let mut r = Report::new(self.name());
        let s = r.section("trace");
        s.count("sites", self.dict.len() as u64);
        s.count("events", c.events);
        s.count("branches", c.branches);
        s.count("bytes", c.bytes);
        if c.branches > 0 {
            s.float("bytes/branch", c.bytes as f64 / c.branches as f64);
        }
        if let Some(e) = &self.error {
            s.text("sink error", e.to_string());
        }
        r
    }
}
