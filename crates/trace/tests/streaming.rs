//! End-to-end streaming trace tests: captured streams agree with the
//! branch-profile monitor, detach restores the zero-overhead baseline
//! while crediting trace stats, and pool fleets drain per-shard channel
//! sinks cross-thread with fleet-aggregated counters.

use std::collections::HashMap;

use wizard_engine::store::Linker;
use wizard_engine::{EngineConfig, Process, Value};
use wizard_monitors::BranchMonitor;
use wizard_pool::{Job, Pool, PoolConfig};
use wizard_suites::richards;
use wizard_trace::{decode_trace, ChannelSink, StreamingTraceMonitor, TraceEvent};

fn richards_process(config: EngineConfig) -> Process {
    Process::new(richards::module(), config, &Linker::new()).expect("richards instantiates")
}

/// Decoded `(taken, not_taken)` per location, from a captured stream.
fn branch_totals(bytes: &[u8]) -> Vec<(wizard_engine::Location, u64, u64)> {
    let (dict, events) = decode_trace(bytes).expect("stream decodes");
    let mut per_site: HashMap<u32, (u64, u64)> = HashMap::new();
    for e in &events {
        if let TraceEvent::Branch { site, taken } = *e {
            let s = per_site.entry(site).or_insert((0, 0));
            if taken {
                s.0 += 1;
            } else {
                s.1 += 1;
            }
        }
    }
    let mut v: Vec<_> = per_site
        .into_iter()
        .map(|(site, (t, n))| (dict.location(site).expect("site in dict"), t, n))
        .collect();
    v.sort_by_key(|(l, _, _)| *l);
    v
}

/// The captured stream carries exactly the same per-site taken /
/// not-taken totals as the hand-written branch-profile monitor.
#[test]
fn streamed_trace_agrees_with_branch_monitor() {
    let mut traced = richards_process(EngineConfig::interpreter());
    let mon = traced.attach_monitor(StreamingTraceMonitor::in_memory()).expect("attach");
    let out = traced.invoke_export("run", &[Value::I32(2)]).expect("runs");
    traced.detach_monitor(mon.handle()).expect("detach");
    let data = mon.borrow().trace_data().expect("in-memory tracer");
    let totals = branch_totals(&data);
    assert!(!totals.is_empty(), "richards has live branches");

    let mut profiled = richards_process(EngineConfig::interpreter());
    let bm = profiled.attach_monitor(BranchMonitor::new()).expect("attach");
    assert_eq!(profiled.invoke_export("run", &[Value::I32(2)]).expect("runs"), out);
    let expected: Vec<_> =
        bm.borrow().site_stats().into_iter().filter(|(_, t, n)| t + n > 0).collect();
    assert_eq!(totals, expected);
}

/// Streams are identical whether probes fire from the interpreter or
/// intrinsified from the JIT.
#[test]
fn streamed_trace_is_tier_invariant() {
    let mut captures = Vec::new();
    for config in
        [EngineConfig::interpreter(), EngineConfig::jit(), EngineConfig::jit_no_intrinsics()]
    {
        let mut p = richards_process(config);
        let mon = p.attach_monitor(StreamingTraceMonitor::in_memory()).expect("attach");
        p.invoke_export("run", &[Value::I32(2)]).expect("runs");
        p.detach_monitor(mon.handle()).expect("detach");
        captures.push(mon.borrow().trace_data().expect("in-memory tracer"));
    }
    assert_eq!(captures[0], captures[1], "jit diverges from interpreter");
    assert_eq!(captures[0], captures[2], "uninstrinsified jit diverges");
}

/// Attach + detach is invisible: the baseline probe state comes back,
/// and the captured activity lands in `EngineStats`.
#[test]
fn detach_restores_baseline_and_credits_stats() {
    let mut p = richards_process(EngineConfig::interpreter());
    assert_eq!(p.stats().trace_events, 0);
    let mon = p.attach_monitor(StreamingTraceMonitor::in_memory()).expect("attach");
    assert!(p.probed_location_count() > 0, "tracer installs local probes");
    p.invoke_export("run", &[Value::I32(1)]).expect("runs");
    p.detach_monitor(mon.handle()).expect("detach");

    assert_eq!(p.probed_location_count(), 0, "detach leaves probes behind");
    assert!(!p.in_global_mode());
    let mon = mon.borrow();
    let c = mon.counters();
    let data = mon.trace_data().expect("in-memory tracer");
    assert!(c.events > 0 && c.branches > 0);
    assert_eq!(c.bytes, data.len() as u64, "counters track emitted bytes");
    assert_eq!(p.stats().trace_events, c.events);
    assert_eq!(p.stats().trace_bytes, c.bytes);
    assert!(mon.sink_error().is_none());
}

/// A pool fleet streams per-shard traces through bounded channels; the
/// main thread drains every receiver, each stream decodes, and the
/// fleet-merged stats aggregate the per-job trace counters.
#[test]
fn pool_fleet_streams_through_channel_sinks() {
    let (rx_tx, rx_rx) = std::sync::mpsc::channel();
    let mut pool = Pool::new(PoolConfig { shards: 3, ..PoolConfig::default() });
    for i in 0..6 {
        let rx_tx = rx_tx.clone();
        pool.submit(
            Job::new(format!("richards-{i}"), richards::module(), "run", vec![Value::I32(1)])
                .with_monitor(move || {
                    let (sink, rx) = ChannelSink::bounded(1024);
                    rx_tx.send(rx).expect("main thread is listening");
                    StreamingTraceMonitor::with_sink(Box::new(sink))
                }),
        );
    }
    drop(rx_tx);
    let outcome = pool.run();
    assert!(outcome.all_ok(), "fleet jobs all complete");

    let mut streams = 0u64;
    let mut total_events = 0u64;
    let mut total_bytes = 0u64;
    for rx in rx_rx.iter() {
        let mut bytes = Vec::new();
        for chunk in rx.iter() {
            bytes.extend_from_slice(&chunk);
        }
        let (dict, events) = decode_trace(&bytes).expect("shard stream decodes");
        assert!(!dict.is_empty() && !events.is_empty());
        streams += 1;
        total_events += events.len() as u64;
        total_bytes += bytes.len() as u64;
    }
    assert_eq!(streams, 6, "one stream per job");
    assert_eq!(outcome.stats.trace_events, total_events, "fleet stats merge trace events");
    assert_eq!(outcome.stats.trace_bytes, total_bytes, "fleet stats merge trace bytes");
}
