//! Cross-crate integration tests: monitor composition, instrumentation
//! equivalence across systems, attach→run→detach round-trips, and
//! end-to-end runs over the benchmark suites.

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::{BranchMonitor, CallsMonitor, CoverageMonitor, HotnessMonitor, LoopMonitor};
use wizard::suites::{all_suites, polybench_suite, richards_benchmark, Scale};

fn process(module: wizard::wasm::Module, config: EngineConfig) -> Process {
    Process::new(module, config, &Linker::new()).expect("instantiates")
}

/// The paper's composability claim (§2.4): multiple monitors attach to the
/// same process without explicit coordination and each observes exactly
/// what it would observe alone.
#[test]
fn monitors_compose_without_interference() {
    let bench = polybench_suite(Scale::Test).into_iter().find(|b| b.name == "gemm").unwrap();

    // Solo runs.
    let mut p = process(bench.module.clone(), EngineConfig::tiered());
    let solo_hot = p.attach_monitor(HotnessMonitor::new()).unwrap();
    let solo_result = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let solo_total = solo_hot.borrow().total();

    let mut p = process(bench.module.clone(), EngineConfig::tiered());
    let solo_br = p.attach_monitor(BranchMonitor::new()).unwrap();
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let solo_branches = solo_br.borrow().total_branches();

    // Composed run: hotness + branch + loop + coverage together.
    let mut p = process(bench.module.clone(), EngineConfig::tiered());
    let hot = p.attach_monitor(HotnessMonitor::new()).unwrap();
    let br = p.attach_monitor(BranchMonitor::new()).unwrap();
    let lp = p.attach_monitor(LoopMonitor::new()).unwrap();
    let cov = p.attach_monitor(CoverageMonitor::new()).unwrap();
    assert_eq!(p.monitor_count(), 4);
    let composed_result = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();

    assert_eq!(solo_result[0].to_slot(), composed_result[0].to_slot(), "non-intrusiveness");
    assert_eq!(hot.borrow().total(), solo_total, "hotness unaffected by composition");
    assert_eq!(br.borrow().total_branches(), solo_branches, "branch unaffected by composition");
    assert!(cov.borrow().ratio() > 0.5, "coverage observed most of the kernel");
    assert!(lp.borrow().total() > 0);

    // Detaching everything restores the zero-overhead baseline.
    for h in p.monitor_handles() {
        p.detach_monitor(h).unwrap();
    }
    assert_eq!(p.monitor_count(), 0);
    assert_eq!(p.probed_location_count(), 0);
    assert!(!p.in_global_mode());
}

/// Attach→run→detach→run round-trips on interpreter and JIT configs: the
/// second (uninstrumented) run still computes the same result, the monitor
/// stops observing, and the process is provably back at baseline.
#[test]
fn detach_round_trip_across_tiers() {
    let bench = polybench_suite(Scale::Test).into_iter().find(|b| b.name == "trisolv").unwrap();
    for config in [EngineConfig::interpreter(), EngineConfig::jit(), EngineConfig::tiered()] {
        let mut p = process(bench.module.clone(), config);
        let hot = p.attach_monitor(HotnessMonitor::new()).unwrap();
        let r1 = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
        let observed = hot.borrow().total();
        assert!(observed > 0);

        p.detach_monitor(hot.handle()).unwrap();
        assert_eq!(p.probed_location_count(), 0, "no probed locations after detach");
        assert!(!p.in_global_mode(), "not in global mode after detach");

        let r2 = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
        assert_eq!(r1[0].to_slot(), r2[0].to_slot(), "detach did not perturb results");
        assert_eq!(hot.borrow().total(), observed, "no events observed after detach");
    }
}

/// Every instrumentation system agrees on WHAT happened (counts), even
/// though they differ wildly in HOW much it costs.
#[test]
fn systems_agree_on_event_counts() {
    let bench = polybench_suite(Scale::Test).into_iter().find(|b| b.name == "trisolv").unwrap();

    // Engine probes (interpreter).
    let mut p = process(bench.module.clone(), EngineConfig::interpreter());
    let hot = p.attach_monitor(HotnessMonitor::new()).unwrap();
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let probe_count = hot.borrow().total();

    // Static rewriting.
    let counted = wizard::rewriter::count_instructions(&bench.module).unwrap();
    let mut p = process(counted.module.clone(), EngineConfig::jit());
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let rewrite_count = counted.total(p.memory().unwrap());

    // Wasabi-style host callbacks.
    let run = wizard::baselines::wasabi::hotness(&bench.module).unwrap();
    let mut p = Process::new(run.module.clone(), EngineConfig::jit(), &run.linker).unwrap();
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let wasabi_count = run.analysis.events();

    // DBI-style clean calls.
    let run = wizard::baselines::dbi::hotness(&bench.module).unwrap();
    let mut p = Process::new(run.module.clone(), EngineConfig::jit(), &run.linker).unwrap();
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let dbi_count = run.tool.clean_calls();

    assert_eq!(probe_count, rewrite_count, "probes vs rewriting");
    assert_eq!(probe_count, wasabi_count, "probes vs wasabi-style");
    assert_eq!(probe_count, dbi_count, "probes vs DBI-style");
}

/// All 49 suite programs run with the hotness monitor attached under the
/// tiered engine, with results identical to uninstrumented runs.
#[test]
fn full_suite_non_intrusiveness_sweep() {
    for bench in all_suites(Scale::Test) {
        let mut plain = process(bench.module.clone(), EngineConfig::tiered());
        let expected = plain.invoke_export("run", &[Value::I32(bench.n)]).unwrap();

        let mut p = process(bench.module.clone(), EngineConfig::tiered());
        let hot = p.attach_monitor(HotnessMonitor::new()).unwrap();
        let got = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
        assert_eq!(
            expected[0].to_slot(),
            got[0].to_slot(),
            "{}/{}: instrumentation was intrusive",
            bench.suite,
            bench.name
        );
        assert!(hot.borrow().total() > 0, "{}: no events", bench.name);
    }
}

/// Richards under the Calls monitor: the call structure the JVMTI
/// experiment depends on (indirect-call-heavy).
#[test]
fn richards_call_structure() {
    let bench = richards_benchmark(5_000);
    let mut p = process(bench.module.clone(), EngineConfig::tiered());
    let calls = p.attach_monitor(CallsMonitor::new()).unwrap();
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let sites = calls.borrow().indirect_sites();
    assert_eq!(sites.len(), 1, "one indirect dispatch site");
    let (_, site) = &sites[0];
    assert!(site.targets.len() >= 3, "dispatch reaches several task kinds");
    let indirect: u64 = site.targets.values().sum();
    assert_eq!(indirect, 5_000, "one indirect call per scheduling step");
    assert!(calls.borrow().total_calls() > indirect, "plus direct helper calls");
}

/// The binary codec round-trips every suite module and the decoded module
/// behaves identically.
#[test]
fn binary_roundtrip_preserves_behavior() {
    for bench in polybench_suite(Scale::Test).into_iter().take(8) {
        let bytes = wizard::wasm::encode::encode(&bench.module);
        let decoded = wizard::wasm::decode::decode(&bytes).expect("decodes");
        let mut a = process(bench.module.clone(), EngineConfig::jit());
        let mut b = process(decoded, EngineConfig::jit());
        let ra = a.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
        let rb = b.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
        assert_eq!(ra[0].to_slot(), rb[0].to_slot(), "{}", bench.name);
    }
}

/// Dynamic tiering on a long run: tier-up happens, results stay identical
/// to the interpreter, and a global probe mid-flight doesn't discard code.
#[test]
fn tiering_with_global_probe_round_trip() {
    let bench = polybench_suite(Scale::Test).into_iter().find(|b| b.name == "gemm").unwrap();
    let mut interp = process(bench.module.clone(), EngineConfig::interpreter());
    let expected = interp.invoke_export("run", &[Value::I32(bench.n)]).unwrap();

    let mut p = process(bench.module.clone(), EngineConfig::builder().tierup_threshold(5).build());
    let r1 = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    assert_eq!(r1[0].to_slot(), expected[0].to_slot());
    assert!(p.stats().tier_ups > 0, "tier-up happened: {:?}", p.stats());

    use std::cell::Cell;
    use std::rc::Rc;
    let count = Rc::new(Cell::new(0u64));
    let c = Rc::clone(&count);
    let id = p
        .add_global_probe(wizard::engine::ClosureProbe::shared(move |_| c.set(c.get() + 1)))
        .unwrap();
    let r2 = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    assert_eq!(r2[0].to_slot(), expected[0].to_slot());
    assert!(count.get() > 1000, "global probe fired per instruction");
    p.remove_probe(id).unwrap();
    let r3 = p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    assert_eq!(r3[0].to_slot(), expected[0].to_slot());
}

/// Runs `bench` with a monitor attached, either unbounded (`fuel: None`)
/// or fuel-sliced to completion, and returns (result slot, report).
fn monitored_run<M: wizard::engine::Monitor + 'static>(
    bench: &wizard::suites::Benchmark,
    config: EngineConfig,
    monitor: M,
    fuel: Option<u64>,
) -> (u64, wizard::engine::Report) {
    use wizard::engine::RunOutcome;
    let mut p = process(bench.module.clone(), config);
    let m = p.attach_monitor(monitor).unwrap();
    let args = [Value::I32(bench.n)];
    let r = match fuel {
        None => p.invoke_export("run", &args).unwrap(),
        Some(slice) => {
            let mut out = p.run_export_bounded("run", &args, slice).unwrap();
            loop {
                match out {
                    RunOutcome::Done(v) => break v,
                    RunOutcome::OutOfFuel => out = p.resume(slice).unwrap(),
                }
            }
        }
    };
    let report = m.report();
    p.detach_monitor(m.handle()).unwrap();
    (r[0].to_slot().0, report)
}

/// The preemption-transparency acceptance criterion: fuel-bounded runs of
/// richards and a polybench kernel — at several slice sizes, on the
/// interpreter *and* the tiered engine — produce monitor reports
/// *identical* to an unbounded run (not just equal totals: equal reports,
/// row for row).
#[test]
fn bounded_runs_produce_identical_monitor_reports() {
    let richards = richards_benchmark(15);
    let gemm = polybench_suite(Scale::Test).into_iter().find(|b| b.name == "gemm").unwrap();
    for bench in [&richards, &gemm] {
        for config in
            [EngineConfig::interpreter(), EngineConfig::builder().tierup_threshold(5).build()]
        {
            let (expected_result, expected_report) =
                monitored_run(bench, config.clone(), HotnessMonitor::new(), None);
            for slice in [997u64, 20_011] {
                let (result, report) =
                    monitored_run(bench, config.clone(), HotnessMonitor::new(), Some(slice));
                assert_eq!(result, expected_result, "{} slice {slice}: wrong result", bench.name);
                assert_eq!(
                    report, expected_report,
                    "{} slice {slice}: bounded report differs from unbounded",
                    bench.name
                );
            }
        }
    }
}

/// The same criterion through the pool: a sharded, fuel-sliced fleet of
/// richards + polybench processes reports exactly what the same monitors
/// report on dedicated unbounded processes.
#[test]
fn pool_fleet_reports_match_dedicated_runs() {
    use wizard::pool::{Job, Pool, PoolConfig};
    let fleet = wizard::suites::fleet(Scale::Test, 8);

    let mut expected = Vec::new();
    for b in &fleet {
        expected.push(monitored_run(b, EngineConfig::tiered(), HotnessMonitor::new(), None));
    }

    let config =
        PoolConfig { shards: 2, engine: EngineConfig::builder().fuel_slice(1_500).build() };
    let mut pool = Pool::new(config);
    for (k, b) in fleet.iter().enumerate() {
        pool.submit(
            Job::new(format!("{}-{k}", b.name), b.module.clone(), "run", vec![Value::I32(b.n)])
                .with_monitor(HotnessMonitor::new),
        );
    }
    let outcome = pool.run();
    assert!(outcome.all_ok());
    assert!(outcome.stats.suspensions > 0, "the fleet really was time-sliced");
    for (j, (expected_result, expected_report)) in outcome.jobs.iter().zip(&expected) {
        assert_eq!(j.result.as_ref().unwrap()[0].to_slot().0, *expected_result, "{}", j.name);
        assert_eq!(
            j.report.as_ref().unwrap(),
            expected_report,
            "{}: pooled report differs from dedicated run",
            j.name
        );
    }
}

/// The serving-engine transparency criterion: a mixed multi-tenant fleet
/// — corpus modules behind shim linkers, polybench, richards; scripted
/// *and* zoo monitors; mixed priorities — served by the work-stealing
/// engine produces, job for job, exactly the results and reports of
/// dedicated single-process runs, while jobs are being sliced, stolen,
/// migrated across workers, and cancelled around them.
#[test]
fn serve_fleet_reports_match_dedicated_runs_under_stealing_and_cancellation() {
    use wizard::engine::Shims;
    use wizard::pool::{Job, JobStatus, Priority, ServeConfig, ServeEngine};
    use wizard::script::ScriptMonitor;
    use wizard::suites::tenant_fleet;

    const SRC: &str = "monitor \"hotness\"\n\
                       match * do inc exec[site]\n\
                       report \"top locations\" top 20 exec\n\
                       report \"summary\" total \"total instruction executions\" exec";

    let fleet = tenant_fleet(Scale::Test, 12);

    // Dedicated reference runs: even jobs carry the zoo hotness monitor,
    // odd jobs the scripted one (they agree anyway, but this pins both
    // attach paths).
    let mut expected = Vec::new();
    for (k, j) in fleet.iter().enumerate() {
        let linker = if j.uses_imports {
            Shims::standard().linker_for(&j.module).expect("corpus shims resolve")
        } else {
            Linker::new()
        };
        let mut p = Process::new(j.module.clone(), EngineConfig::tiered(), &linker).unwrap();
        let report = if k % 2 == 0 {
            let m = p.attach_monitor(HotnessMonitor::new()).unwrap();
            let r = p.invoke_export("run", &[Value::I32(j.n)]).unwrap();
            let rep = m.report();
            p.detach_monitor(m.handle()).unwrap();
            (r[0].to_slot().0, rep)
        } else {
            let m = p.attach_monitor(ScriptMonitor::from_source(SRC).unwrap()).unwrap();
            let r = p.invoke_export("run", &[Value::I32(j.n)]).unwrap();
            let rep = m.report();
            p.detach_monitor(m.handle()).unwrap();
            (r[0].to_slot().0, rep)
        };
        expected.push((k, report));
    }

    let engine = ServeEngine::new(ServeConfig {
        workers: 2,
        engine: EngineConfig::builder().fuel_slice(1_000).build(),
        stride: 1, // rotate aggressively: maximize interleave + stealing
        ..ServeConfig::default()
    });
    let script_factory = wizard::script::monitor_factory(SRC).unwrap();
    let mut handles = Vec::new();
    let mut victims = Vec::new();
    for (k, j) in fleet.iter().enumerate() {
        let mut job =
            Job::new(format!("{}-{k}", j.name), j.module.clone(), "run", vec![Value::I32(j.n)])
                .for_tenant(j.tenant)
                .at_priority(match j.class {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    _ => Priority::Low,
                });
        job = if k % 2 == 0 {
            job.with_monitor(HotnessMonitor::new)
        } else {
            job.with_monitor_factory(script_factory.clone())
        };
        if j.uses_imports {
            let module = j.module.clone();
            job = job.with_linker(move || {
                Shims::standard().linker_for(&module).expect("corpus shims resolve")
            });
        }
        handles.push(engine.try_submit(job).handle().unwrap());
        // Interleave doomed richards jobs that get cancelled mid-fleet:
        // their teardown (monitor detach, process drop) must not perturb
        // any sibling's report.
        if k % 4 == 0 {
            let doomed = Job::new(
                format!("victim-{k}"),
                wizard::suites::richards_benchmark(1_000_000).module,
                "run",
                vec![Value::I32(1_000_000)],
            )
            .with_monitor(HotnessMonitor::new);
            victims.push(engine.try_submit(doomed).handle().unwrap());
        }
    }
    for v in &victims {
        v.cancel();
    }

    for (h, (k, (expected_result, expected_report))) in handles.iter().zip(&expected) {
        let out = h.wait();
        assert_eq!(
            out.status.values().map(|v| v[0].to_slot().0),
            Some(*expected_result),
            "{}: wrong result",
            out.name
        );
        assert_eq!(
            out.report.as_ref().unwrap(),
            expected_report,
            "job {k} ({}): served report differs from dedicated run \
             (slices={}, migrations={})",
            out.name,
            out.slices,
            out.migrations
        );
    }
    for v in &victims {
        assert_eq!(v.wait().status, JobStatus::Cancelled);
    }
    let summary = engine.shutdown();
    assert!(summary.stats.suspensions > 0, "the fleet really was time-sliced");
    assert_eq!(summary.completed, (handles.len() + victims.len()) as u64);
    // The fleet merges one report per analysis title across all jobs.
    assert!(summary.merged_report("hotness").is_some());
}

/// Scripts are monitors all the way down: a wizard-script program
/// composes with hand-written monitors on one process without
/// interference, and a fuel-sliced (bounded) scripted run reports
/// exactly what an unbounded one does — the transparency guarantee
/// extends to data-driven instrumentation.
#[test]
fn scripted_monitors_compose_and_survive_preemption() {
    use wizard::engine::RunOutcome;
    use wizard::script::ScriptMonitor;

    const SRC: &str = "monitor \"hotness\"\n\
                       match * do inc exec[site]\n\
                       report \"top locations\" top 20 exec\n\
                       report \"summary\" total \"total instruction executions\" exec";
    let bench = richards_benchmark(25);

    // Unbounded scripted run next to a hand-written branch monitor.
    let mut p = process(bench.module.clone(), EngineConfig::tiered());
    let script = p.attach_monitor(ScriptMonitor::from_source(SRC).unwrap()).unwrap();
    let branch = p.attach_monitor(BranchMonitor::new()).unwrap();
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    let unbounded_report = script.report();
    let solo_branches = branch.borrow().total_branches();
    assert!(solo_branches > 0);

    // The scripted counts equal the hand-written hotness monitor's.
    let mut p = process(bench.module.clone(), EngineConfig::tiered());
    let hot = p.attach_monitor(HotnessMonitor::new()).unwrap();
    p.invoke_export("run", &[Value::I32(bench.n)]).unwrap();
    assert_eq!(unbounded_report, hot.report(), "scripted vs handwritten, composed");

    // Bounded (fuel-sliced) scripted run: identical report, row for row.
    let mut p = process(bench.module, EngineConfig::tiered());
    let script2 = p.attach_monitor(ScriptMonitor::from_source(SRC).unwrap()).unwrap();
    let mut out = p.run_export_bounded("run", &[Value::I32(bench.n)], 500).unwrap();
    let mut slices = 1;
    while out == RunOutcome::OutOfFuel {
        out = p.resume(500).unwrap();
        slices += 1;
    }
    assert!(slices > 1, "the run really was preempted");
    assert_eq!(script2.report(), unbounded_report, "bounded vs unbounded scripted run");
}
