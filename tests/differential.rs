//! Differential testing of the execution pipeline — the safety net for the
//! lowering refactor, wired into `cargo test` (unlike `proptests.rs`,
//! which needs the external `proptest` crate).
//!
//! A deterministic PRNG drives a small program generator over the builder
//! DSL (arithmetic, locals, `if`/`else`, nested loops, trapping division).
//! Every generated module must behave *identically* — results, traps,
//! monitor reports — across:
//!
//! * the lowered interpreter (the new fast path, fused superinstructions
//!   included) vs the classic byte-walking dispatcher (the semantic
//!   reference);
//! * interpreter-only vs JIT-only vs tiered execution;
//! * uninstrumented vs probe-instrumented (hotness counts every
//!   instruction, exercising probe patches on fused and unfused slots);
//! * unbounded vs fuel-bounded execution resumed across suspensions.

use std::sync::Arc;

use wizard::engine::store::Linker;
use wizard::engine::{
    Dispatch, EngineConfig, ExecMode, ModuleArtifact, Process, RunOutcome, Trap, Value,
};
use wizard::monitors::HotnessMonitor;
use wizard::suites::randgen::random_module;
use wizard::wasm::Module;

fn configs() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("interp-lowered", EngineConfig::interpreter()),
        ("interp-bytecode", EngineConfig::interpreter_bytecode()),
        ("jit", EngineConfig::jit()),
        ("tiered-lowered", EngineConfig::builder().tierup_threshold(2).build()),
        (
            "tiered-bytecode",
            EngineConfig::builder()
                .mode(ExecMode::Tiered)
                .dispatch(Dispatch::Bytecode)
                .tierup_threshold(2)
                .build(),
        ),
    ]
}

fn run_plain(m: &Module, config: EngineConfig, arg: i32) -> Result<Vec<Value>, Trap> {
    let mut p = Process::new(m.clone(), config, &Linker::new()).expect("instantiates");
    p.invoke_export("run", &[Value::I32(arg)])
}

/// Results and traps are identical across every dispatcher and tier.
#[test]
fn random_programs_agree_across_dispatchers_and_tiers() {
    for seed in 0..40u64 {
        let m = random_module(seed);
        for arg in [0i32, 3, 17] {
            let reference = run_plain(&m, EngineConfig::interpreter_bytecode(), arg);
            for (name, config) in configs() {
                let got = run_plain(&m, config, arg);
                assert_eq!(got, reference, "seed {seed} arg {arg} config {name}");
            }
        }
    }
}

/// Probe-instrumented runs (hotness counts every instruction — every slot
/// probed, fused or not) produce identical results AND identical reports
/// across dispatchers and tiers, and never perturb the program.
#[test]
fn random_programs_probed_reports_are_dispatcher_invariant() {
    for seed in 0..20u64 {
        let m = random_module(seed + 1000);
        let arg = 9i32;
        let reference = run_plain(&m, EngineConfig::interpreter_bytecode(), arg);
        let mut reports = Vec::new();
        for (name, config) in configs() {
            let mut p = Process::new(m.clone(), config, &Linker::new()).expect("instantiates");
            let mon = p.attach_monitor(HotnessMonitor::new()).expect("attach");
            let got = p.invoke_export("run", &[Value::I32(arg)]);
            assert_eq!(got, reference, "seed {seed} config {name}: probes perturbed the program");
            reports.push((name, mon.report()));
        }
        let (ref_name, ref_report) = &reports[0];
        for (name, report) in &reports[1..] {
            assert_eq!(report, ref_report, "seed {seed}: {name} report differs from {ref_name}");
        }
    }
}

/// Shared-artifact arm: two processes instantiated from one
/// `Arc<ModuleArtifact>` — one probed (every instruction) and then
/// detached, one left alone — must match an owned-module process
/// instruction-for-instruction and report-for-report, across every
/// dispatcher/tier and under fuel-bounded execution.
#[test]
fn random_programs_shared_artifact_processes_match_owned() {
    for seed in 0..12u64 {
        let m = random_module(seed + 3000);
        let arg = 8i32;
        let artifact = Arc::new(ModuleArtifact::new(m.clone()).expect("validates"));
        for (name, config) in configs() {
            // Reference: an owned-module process with the same monitor.
            let mut owned =
                Process::new(m.clone(), config.clone(), &Linker::new()).expect("instantiates");
            let mon_o = owned.attach_monitor(HotnessMonitor::new()).expect("attach");
            let expect = owned.invoke_export("run", &[Value::I32(arg)]);

            let mut probed =
                Process::instantiate(Arc::clone(&artifact), config.clone(), &Linker::new())
                    .expect("instantiates");
            let mut sibling =
                Process::instantiate(Arc::clone(&artifact), config.clone(), &Linker::new())
                    .expect("instantiates");

            // The probed sibling, fuel-bounded across tiny slices.
            let mon_p = probed.attach_monitor(HotnessMonitor::new()).expect("attach");
            let got = (|| {
                let mut out = probed.run_export_bounded("run", &[Value::I32(arg)], 29)?;
                while out == RunOutcome::OutOfFuel {
                    out = probed.resume(29)?;
                }
                Ok(out.done().expect("done"))
            })();
            assert_eq!(
                got, expect,
                "seed {seed} config {name}: shared-artifact result differs from owned"
            );
            assert_eq!(
                mon_p.report(),
                mon_o.report(),
                "seed {seed} config {name}: shared-artifact report differs from owned"
            );

            // The uninstrumented sibling: identical program behavior, zero
            // instrumentation observed, zero copies paid.
            let got_sib = sibling.invoke_export("run", &[Value::I32(arg)]);
            assert_eq!(got_sib, expect, "seed {seed} config {name}: sibling result differs");
            assert_eq!(sibling.stats().probe_fires, 0, "seed {seed} {name}: sibling saw probes");
            assert_eq!(sibling.resident_overlay_bytes(), 0);

            // Detach restores sharing: the probed process drops its copies
            // and rejoins the artifact's code.
            let handle = mon_p.handle();
            probed.detach_monitor(handle).expect("detach");
            assert_eq!(
                probed.resident_overlay_bytes(),
                0,
                "seed {seed} config {name}: detach left overlay copies resident"
            );
            if config.dispatch != Dispatch::Bytecode {
                let func = probed.module().export_func("run").unwrap();
                assert_eq!(
                    probed.code_identity(func).unwrap(),
                    sibling.code_identity(func).unwrap(),
                    "seed {seed} config {name}: detach did not rejoin the shared code"
                );
            }
        }
    }
}

/// Translation-validator arm: every random module's lowered form is
/// effect-equivalent to its byte form — checked directly over the
/// artifact, through the engine-side `validate_lowering(true)` hook, and
/// again after a full probe insert/remove cycle (instrumentation must
/// never perturb the canonical lowering).
#[test]
fn random_programs_lowerings_translation_validate() {
    wizard::analysis::install_engine_validator();

    // Direct arm: lower and validate a wide sweep of random modules.
    for seed in 0..500u64 {
        let m = random_module(seed + 4000);
        let artifact = ModuleArtifact::new(m).expect("validates");
        artifact.lower_all();
        wizard::analysis::validate_lowering(&artifact)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }

    // Engine-hook arm: instantiate with validation enabled, probe every
    // instruction, run, detach, and re-validate the shared lowering.
    for seed in 0..40u64 {
        let m = random_module(seed + 4000);
        let artifact = Arc::new(ModuleArtifact::new(m).expect("validates"));
        let config = EngineConfig::builder().validate_lowering(true).build();
        let mut p = Process::instantiate(Arc::clone(&artifact), config, &Linker::new())
            .unwrap_or_else(|e| panic!("seed {seed}: validated instantiate failed: {e}"));
        assert_eq!(p.stats().lowering_validations, 1, "seed {seed}");
        let mon = p.attach_monitor(HotnessMonitor::new()).expect("attach");
        let _ = p.invoke_export("run", &[Value::I32(5)]);
        p.detach_monitor(mon.handle()).expect("detach");
        wizard::analysis::validate_lowering(&artifact)
            .unwrap_or_else(|e| panic!("seed {seed} after probe cycle: {e}"));
    }
}

/// Fuel-bounded runs suspended and resumed across tiny slices finish with
/// the same results, traps, and monitor reports as unbounded runs.
#[test]
fn random_programs_bounded_runs_are_transparent() {
    for seed in 0..12u64 {
        let m = random_module(seed + 2000);
        let arg = 7i32;
        for (name, config) in configs() {
            let mut unbounded =
                Process::new(m.clone(), config.clone(), &Linker::new()).expect("instantiates");
            let mon_u = unbounded.attach_monitor(HotnessMonitor::new()).expect("attach");
            let expect = unbounded.invoke_export("run", &[Value::I32(arg)]);

            let mut bounded =
                Process::new(m.clone(), config, &Linker::new()).expect("instantiates");
            let mon_b = bounded.attach_monitor(HotnessMonitor::new()).expect("attach");
            let got = (|| {
                let mut out = bounded.run_export_bounded("run", &[Value::I32(arg)], 37)?;
                while out == RunOutcome::OutOfFuel {
                    out = bounded.resume(37)?;
                }
                Ok(out.done().expect("done"))
            })();
            assert_eq!(got, expect, "seed {seed} config {name}: bounded result differs");
            assert_eq!(
                mon_b.report(),
                mon_u.report(),
                "seed {seed} config {name}: bounded report differs"
            );
        }
    }
}
