//! Differential testing of the execution pipeline — the safety net for the
//! lowering refactor, wired into `cargo test` (unlike `proptests.rs`,
//! which needs the external `proptest` crate).
//!
//! A deterministic PRNG drives a small program generator over the builder
//! DSL (arithmetic, locals, `if`/`else`, nested loops, trapping division).
//! Every generated module must behave *identically* — results, traps,
//! monitor reports — across:
//!
//! * the lowered interpreter (the new fast path, fused superinstructions
//!   included) vs the classic byte-walking dispatcher (the semantic
//!   reference);
//! * interpreter-only vs JIT-only vs tiered execution;
//! * uninstrumented vs probe-instrumented (hotness counts every
//!   instruction, exercising probe patches on fused and unfused slots);
//! * unbounded vs fuel-bounded execution resumed across suspensions.

use std::sync::Arc;

use wizard::engine::store::Linker;
use wizard::engine::{
    Dispatch, EngineConfig, ExecMode, ModuleArtifact, Process, RunOutcome, Trap, Value,
};
use wizard::monitors::HotnessMonitor;
use wizard::wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard::wasm::types::ValType::I32;
use wizard::wasm::Module;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Emits a random i32 expression of bounded depth; every path leaves
/// exactly one i32 on the stack. `locals` is the number of readable
/// locals (params + declared).
fn emit_expr(f: &mut FuncBuilder, rng: &mut Rng, locals: u32, depth: u32) {
    if depth == 0 || rng.below(4) == 0 {
        if rng.below(2) == 0 {
            f.i32_const(rng.next() as i32);
        } else {
            f.local_get(rng.below(u64::from(locals)) as u32);
        }
        return;
    }
    match rng.below(12) {
        0..=5 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            match rng.below(6) {
                0 => f.i32_add(),
                1 => f.i32_sub(),
                2 => f.i32_mul(),
                3 => f.i32_and(),
                4 => f.i32_xor(),
                _ => f.i32_or(),
            };
        }
        6 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            // Trapping operations: division by zero and overflow must
            // unwind identically everywhere.
            if rng.below(2) == 0 {
                f.i32_div_s();
            } else {
                f.i32_rem_s();
            }
        }
        7 => {
            emit_expr(f, rng, locals, depth - 1);
            f.i32_eqz();
        }
        8 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            f.i32_lt_s();
        }
        9 => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            f.select();
        }
        _ => {
            emit_expr(f, rng, locals, depth - 1);
            emit_expr(f, rng, locals, depth - 1);
            match rng.below(3) {
                0 => f.i32_shl(),
                1 => f.i32_shr_s(),
                _ => f.i32_rotl(),
            };
        }
    }
}

/// Picks a writable local: never index 0 — that is the parameter, which
/// bounds the outer loop; overwriting it would make generated programs
/// run unboundedly.
fn writable(rng: &mut Rng, locals: u32) -> u32 {
    1 + rng.below(u64::from(locals - 1)) as u32
}

/// Emits a random statement (net stack effect zero).
fn emit_stmt(f: &mut FuncBuilder, rng: &mut Rng, locals: u32, depth: u32) {
    match rng.below(4) {
        // local := expr
        0 | 1 => {
            emit_expr(f, rng, locals, 2);
            let dst = writable(rng, locals);
            f.local_set(dst);
        }
        // if/else on a random condition
        2 => {
            emit_expr(f, rng, locals, 2);
            f.if_(wizard::wasm::types::BlockType::Empty);
            emit_expr(f, rng, locals, 1);
            let dst = writable(rng, locals);
            f.local_set(dst);
            if rng.below(2) == 0 {
                f.else_();
                emit_expr(f, rng, locals, 1);
                let dst = writable(rng, locals);
                f.local_set(dst);
            }
            f.end();
        }
        // small nested constant loop
        _ => {
            if depth > 0 {
                let i = f.local(I32);
                let n = 1 + rng.below(4) as i32;
                let inner = 1 + rng.below(2) as u32;
                f.for_const(i, n, |f| {
                    for _ in 0..inner {
                        emit_stmt(f, rng, locals, depth - 1);
                    }
                });
            } else {
                emit_expr(f, rng, locals, 1);
                let dst = writable(rng, locals);
                f.local_set(dst);
            }
        }
    }
}

/// Builds a random module: one exported `run(i32) -> i32` with a
/// parameter-bounded outer loop whose body is a random statement list,
/// returning a mix of the locals.
fn random_module(seed: u64) -> Module {
    let mut rng = Rng::new(seed);
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let n_locals = 2 + rng.below(3) as u32; // declared i32 locals
    for _ in 0..n_locals {
        f.local(I32);
    }
    let locals = 1 + n_locals; // param + declared
    let i = f.local(I32);
    let n_stmts = 1 + rng.below(3);
    f.for_range(i, 0, |f| {
        for _ in 0..n_stmts {
            emit_stmt(f, &mut rng, locals, 1);
        }
    });
    // Fold every local into the result.
    f.local_get(0);
    for k in 1..locals {
        f.local_get(k);
        f.i32_add();
    }
    mb.add_func("run", f);
    mb.build().expect("generated module validates")
}

fn configs() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("interp-lowered", EngineConfig::interpreter()),
        ("interp-bytecode", EngineConfig::interpreter_bytecode()),
        ("jit", EngineConfig::jit()),
        ("tiered-lowered", EngineConfig::builder().tierup_threshold(2).build()),
        (
            "tiered-bytecode",
            EngineConfig::builder()
                .mode(ExecMode::Tiered)
                .dispatch(Dispatch::Bytecode)
                .tierup_threshold(2)
                .build(),
        ),
    ]
}

fn run_plain(m: &Module, config: EngineConfig, arg: i32) -> Result<Vec<Value>, Trap> {
    let mut p = Process::new(m.clone(), config, &Linker::new()).expect("instantiates");
    p.invoke_export("run", &[Value::I32(arg)])
}

/// Results and traps are identical across every dispatcher and tier.
#[test]
fn random_programs_agree_across_dispatchers_and_tiers() {
    for seed in 0..40u64 {
        let m = random_module(seed);
        for arg in [0i32, 3, 17] {
            let reference = run_plain(&m, EngineConfig::interpreter_bytecode(), arg);
            for (name, config) in configs() {
                let got = run_plain(&m, config, arg);
                assert_eq!(got, reference, "seed {seed} arg {arg} config {name}");
            }
        }
    }
}

/// Probe-instrumented runs (hotness counts every instruction — every slot
/// probed, fused or not) produce identical results AND identical reports
/// across dispatchers and tiers, and never perturb the program.
#[test]
fn random_programs_probed_reports_are_dispatcher_invariant() {
    for seed in 0..20u64 {
        let m = random_module(seed + 1000);
        let arg = 9i32;
        let reference = run_plain(&m, EngineConfig::interpreter_bytecode(), arg);
        let mut reports = Vec::new();
        for (name, config) in configs() {
            let mut p = Process::new(m.clone(), config, &Linker::new()).expect("instantiates");
            let mon = p.attach_monitor(HotnessMonitor::new()).expect("attach");
            let got = p.invoke_export("run", &[Value::I32(arg)]);
            assert_eq!(got, reference, "seed {seed} config {name}: probes perturbed the program");
            reports.push((name, mon.report()));
        }
        let (ref_name, ref_report) = &reports[0];
        for (name, report) in &reports[1..] {
            assert_eq!(report, ref_report, "seed {seed}: {name} report differs from {ref_name}");
        }
    }
}

/// Shared-artifact arm: two processes instantiated from one
/// `Arc<ModuleArtifact>` — one probed (every instruction) and then
/// detached, one left alone — must match an owned-module process
/// instruction-for-instruction and report-for-report, across every
/// dispatcher/tier and under fuel-bounded execution.
#[test]
fn random_programs_shared_artifact_processes_match_owned() {
    for seed in 0..12u64 {
        let m = random_module(seed + 3000);
        let arg = 8i32;
        let artifact = Arc::new(ModuleArtifact::new(m.clone()).expect("validates"));
        for (name, config) in configs() {
            // Reference: an owned-module process with the same monitor.
            let mut owned =
                Process::new(m.clone(), config.clone(), &Linker::new()).expect("instantiates");
            let mon_o = owned.attach_monitor(HotnessMonitor::new()).expect("attach");
            let expect = owned.invoke_export("run", &[Value::I32(arg)]);

            let mut probed =
                Process::instantiate(Arc::clone(&artifact), config.clone(), &Linker::new())
                    .expect("instantiates");
            let mut sibling =
                Process::instantiate(Arc::clone(&artifact), config.clone(), &Linker::new())
                    .expect("instantiates");

            // The probed sibling, fuel-bounded across tiny slices.
            let mon_p = probed.attach_monitor(HotnessMonitor::new()).expect("attach");
            let got = (|| {
                let mut out = probed.run_export_bounded("run", &[Value::I32(arg)], 29)?;
                while out == RunOutcome::OutOfFuel {
                    out = probed.resume(29)?;
                }
                Ok(out.done().expect("done"))
            })();
            assert_eq!(
                got, expect,
                "seed {seed} config {name}: shared-artifact result differs from owned"
            );
            assert_eq!(
                mon_p.report(),
                mon_o.report(),
                "seed {seed} config {name}: shared-artifact report differs from owned"
            );

            // The uninstrumented sibling: identical program behavior, zero
            // instrumentation observed, zero copies paid.
            let got_sib = sibling.invoke_export("run", &[Value::I32(arg)]);
            assert_eq!(got_sib, expect, "seed {seed} config {name}: sibling result differs");
            assert_eq!(sibling.stats().probe_fires, 0, "seed {seed} {name}: sibling saw probes");
            assert_eq!(sibling.resident_overlay_bytes(), 0);

            // Detach restores sharing: the probed process drops its copies
            // and rejoins the artifact's code.
            let handle = mon_p.handle();
            probed.detach_monitor(handle).expect("detach");
            assert_eq!(
                probed.resident_overlay_bytes(),
                0,
                "seed {seed} config {name}: detach left overlay copies resident"
            );
            if config.dispatch != Dispatch::Bytecode {
                let func = probed.module().export_func("run").unwrap();
                assert_eq!(
                    probed.code_identity(func).unwrap(),
                    sibling.code_identity(func).unwrap(),
                    "seed {seed} config {name}: detach did not rejoin the shared code"
                );
            }
        }
    }
}

/// Translation-validator arm: every random module's lowered form is
/// effect-equivalent to its byte form — checked directly over the
/// artifact, through the engine-side `validate_lowering(true)` hook, and
/// again after a full probe insert/remove cycle (instrumentation must
/// never perturb the canonical lowering).
#[test]
fn random_programs_lowerings_translation_validate() {
    wizard::analysis::install_engine_validator();

    // Direct arm: lower and validate a wide sweep of random modules.
    for seed in 0..500u64 {
        let m = random_module(seed + 4000);
        let artifact = ModuleArtifact::new(m).expect("validates");
        artifact.lower_all();
        wizard::analysis::validate_lowering(&artifact)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }

    // Engine-hook arm: instantiate with validation enabled, probe every
    // instruction, run, detach, and re-validate the shared lowering.
    for seed in 0..40u64 {
        let m = random_module(seed + 4000);
        let artifact = Arc::new(ModuleArtifact::new(m).expect("validates"));
        let config = EngineConfig::builder().validate_lowering(true).build();
        let mut p = Process::instantiate(Arc::clone(&artifact), config, &Linker::new())
            .unwrap_or_else(|e| panic!("seed {seed}: validated instantiate failed: {e}"));
        assert_eq!(p.stats().lowering_validations, 1, "seed {seed}");
        let mon = p.attach_monitor(HotnessMonitor::new()).expect("attach");
        let _ = p.invoke_export("run", &[Value::I32(5)]);
        p.detach_monitor(mon.handle()).expect("detach");
        wizard::analysis::validate_lowering(&artifact)
            .unwrap_or_else(|e| panic!("seed {seed} after probe cycle: {e}"));
    }
}

/// Fuel-bounded runs suspended and resumed across tiny slices finish with
/// the same results, traps, and monitor reports as unbounded runs.
#[test]
fn random_programs_bounded_runs_are_transparent() {
    for seed in 0..12u64 {
        let m = random_module(seed + 2000);
        let arg = 7i32;
        for (name, config) in configs() {
            let mut unbounded =
                Process::new(m.clone(), config.clone(), &Linker::new()).expect("instantiates");
            let mon_u = unbounded.attach_monitor(HotnessMonitor::new()).expect("attach");
            let expect = unbounded.invoke_export("run", &[Value::I32(arg)]);

            let mut bounded =
                Process::new(m.clone(), config, &Linker::new()).expect("instantiates");
            let mon_b = bounded.attach_monitor(HotnessMonitor::new()).expect("attach");
            let got = (|| {
                let mut out = bounded.run_export_bounded("run", &[Value::I32(arg)], 37)?;
                while out == RunOutcome::OutOfFuel {
                    out = bounded.resume(37)?;
                }
                Ok(out.done().expect("done"))
            })();
            assert_eq!(got, expect, "seed {seed} config {name}: bounded result differs");
            assert_eq!(
                mon_b.report(),
                mon_u.report(),
                "seed {seed} config {name}: bounded report differs"
            );
        }
    }
}
