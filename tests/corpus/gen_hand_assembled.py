#!/usr/bin/env python3
"""Generates the hand-assembled .wasm binaries checked in next to this file.

These are written byte-by-byte, deliberately NOT via the repo's own
encoder, so the decoder is tested against an independent producer:

* hand_add4.wasm      — minimal canonical module: run(n) = n + 4.
* hand_noncanon.wasm  — the same semantics, but every section size,
                        count, index, and const immediate is a padded
                        (non-canonical, in-range) LEB128. Decodes to an
                        equivalent module; re-encoding canonicalizes, so
                        the bytes do NOT round-trip identically — this
                        pins the spec's normalization tolerance.
* hand_start_data.wasm — start function + mutable global + memory + data
                        segment: start loads the first word of the data
                        segment into the global; run(n) = n * global.

Run from the repo root:  python3 tests/corpus/gen_hand_assembled.py
"""

import os


def uleb(v: int) -> bytes:
    out = bytearray()
    while True:
        b = v & 0x7F
        v >>= 7
        if v:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def uleb_pad(v: int, width: int) -> bytes:
    """Non-canonical unsigned LEB: zero-padded to `width` bytes."""
    out = bytearray()
    for _ in range(width - 1):
        out.append((v & 0x7F) | 0x80)
        v >>= 7
    assert 0 <= v <= 0x7F
    out.append(v)
    return bytes(out)


def sleb_pad(v: int, width: int) -> bytes:
    """Non-canonical signed LEB for small non-negative v."""
    assert 0 <= v < 0x40
    out = bytearray()
    cur = v
    for _ in range(width - 1):
        out.append((cur & 0x7F) | 0x80)
        cur >>= 7
    out.append(cur)  # high bits clear => sign bit 0
    return bytes(out)


def section(sid: int, payload: bytes, size_width: int = 0) -> bytes:
    size = uleb_pad(len(payload), size_width) if size_width else uleb(len(payload))
    return bytes([sid]) + size + payload


MAGIC = bytes.fromhex("0061736d01000000")
RUN = b"\x03run"


def hand_add4() -> bytes:
    types = section(1, b"\x01\x60\x01\x7f\x01\x7f")
    funcs = section(3, b"\x01\x00")
    exports = section(7, b"\x01" + RUN + b"\x00\x00")
    body = b"\x00" + b"\x20\x00" + b"\x41\x04" + b"\x6a" + b"\x0b"
    code = section(10, b"\x01" + uleb(len(body)) + body)
    # name section: function 0 is called "add4".
    namesub = b"\x01\x00\x04add4"
    names = section(0, b"\x04name" + b"\x01" + uleb(len(namesub)) + namesub)
    return MAGIC + types + funcs + exports + code + names


def hand_noncanon() -> bytes:
    # Same module as hand_add4 (minus the name section), with padded LEBs
    # everywhere the format reads an integer.
    types = section(1, uleb_pad(1, 2) + b"\x60\x01\x7f\x01\x7f", size_width=2)
    funcs = section(3, uleb_pad(1, 3) + uleb_pad(0, 2), size_width=2)
    exports = section(7, uleb_pad(1, 2) + RUN + b"\x00" + uleb_pad(0, 2), size_width=2)
    body = (
        b"\x00"  # local decl count (canonical: padded locals tested via funcs)
        + b"\x20" + uleb_pad(0, 2)  # local.get 0, padded index
        + b"\x41" + sleb_pad(4, 3)  # i32.const 4, padded immediate
        + b"\x6a\x0b"
    )
    code = section(10, uleb_pad(1, 2) + uleb_pad(len(body), 2) + body, size_width=3)
    return MAGIC + types + funcs + exports + code


def hand_start_data() -> bytes:
    types = section(1, b"\x02" + b"\x60\x00\x00" + b"\x60\x01\x7f\x01\x7f")
    funcs = section(3, b"\x02\x00\x01")
    memory = section(5, b"\x01\x00\x01")
    globals_ = section(6, b"\x01\x7f\x01" + b"\x41\x00\x0b")
    exports = section(7, b"\x01" + RUN + b"\x00\x01")
    start = section(8, b"\x00")
    init_body = b"\x00" + b"\x41\x00" + b"\x28\x02\x10" + b"\x24\x00" + b"\x0b"
    run_body = b"\x00" + b"\x20\x00" + b"\x23\x00" + b"\x6c" + b"\x0b"
    code = section(
        10,
        b"\x02"
        + uleb(len(init_body)) + init_body
        + uleb(len(run_body)) + run_body,
    )
    payload = b"corpus"
    data = section(11, b"\x01\x00" + b"\x41\x10\x0b" + uleb(len(payload)) + payload)
    return MAGIC + types + funcs + memory + globals_ + exports + start + code + data


def main() -> None:
    here = os.path.dirname(os.path.abspath(__file__))
    for name, build in [
        ("hand_add4.wasm", hand_add4),
        ("hand_noncanon.wasm", hand_noncanon),
        ("hand_start_data.wasm", hand_start_data),
    ]:
        path = os.path.join(here, name)
        with open(path, "wb") as f:
            f.write(build())
        print(f"wrote {path} ({os.path.getsize(path)} bytes)")


if __name__ == "__main__":
    main()
