//! Property-based tests over the core invariants:
//!
//! * the binary codec round-trips arbitrary straight-line modules;
//! * the interpreter and JIT agree bit-exactly on arbitrary programs;
//! * numeric semantics are shared between tiers by construction, checked
//!   on random operand values;
//! * random probe insert/remove sequences keep the registry and bytecode
//!   overwriting consistent.

use proptest::prelude::*;

use wizard::engine::store::Linker;
use wizard::engine::{CountProbe, EngineConfig, Process, Slot, Value};
use wizard::wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard::wasm::types::ValType::{I32, I64};

/// A tiny stack-safe expression language compiled to Wasm.
#[derive(Debug, Clone)]
enum Expr {
    ConstI32(i32),
    Param,
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, Box<Expr>),
    Rotl(Box<Expr>, Box<Expr>),
    Eqz(Box<Expr>),
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![any::<i32>().prop_map(Expr::ConstI32), Just(Expr::Param)];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Shl(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Rotl(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Eqz(a.into())),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c)| Expr::Select(a.into(), b.into(), c.into())),
        ]
    })
}

fn emit(e: &Expr, f: &mut FuncBuilder) {
    match e {
        Expr::ConstI32(v) => {
            f.i32_const(*v);
        }
        Expr::Param => {
            f.local_get(0);
        }
        Expr::Add(a, b) => {
            emit(a, f);
            emit(b, f);
            f.i32_add();
        }
        Expr::Sub(a, b) => {
            emit(a, f);
            emit(b, f);
            f.i32_sub();
        }
        Expr::Mul(a, b) => {
            emit(a, f);
            emit(b, f);
            f.i32_mul();
        }
        Expr::And(a, b) => {
            emit(a, f);
            emit(b, f);
            f.i32_and();
        }
        Expr::Xor(a, b) => {
            emit(a, f);
            emit(b, f);
            f.i32_xor();
        }
        Expr::Shl(a, b) => {
            emit(a, f);
            emit(b, f);
            f.i32_shl();
        }
        Expr::Rotl(a, b) => {
            emit(a, f);
            emit(b, f);
            f.i32_rotl();
        }
        Expr::Eqz(a) => {
            emit(a, f);
            f.i32_eqz();
        }
        Expr::Select(a, b, c) => {
            emit(a, f);
            emit(b, f);
            emit(c, f);
            f.select();
        }
    }
}

fn module_for(e: &Expr) -> wizard::wasm::Module {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    emit(e, &mut f);
    mb.add_func("run", f);
    mb.build().expect("generated expression validates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random expressions: interpreter and JIT agree bit-exactly, and the
    /// module survives an encode/decode round-trip.
    #[test]
    fn tiers_agree_on_random_expressions(e in expr_strategy(), arg in any::<i32>()) {
        let m = module_for(&e);
        let bytes = wizard::wasm::encode::encode(&m);
        let decoded = wizard::wasm::decode::decode(&bytes).expect("round-trips");
        let mut interp = Process::new(m, EngineConfig::interpreter(), &Linker::new()).unwrap();
        let mut jit = Process::new(decoded, EngineConfig::jit(), &Linker::new()).unwrap();
        let a = interp.invoke_export("run", &[Value::I32(arg)]).unwrap();
        let b = jit.invoke_export("run", &[Value::I32(arg)]).unwrap();
        prop_assert_eq!(a[0].to_slot(), b[0].to_slot());
    }

    /// Shared numeric semantics: every binop matches a reference
    /// computation on random inputs (spot-checking the shared table both
    /// tiers dispatch through).
    #[test]
    fn i64_numeric_reference(a in any::<i64>(), b in any::<i64>()) {
        use wizard::engine::numeric::binop;
        use wizard::wasm::opcodes as op;
        let sa = Slot::from_i64(a);
        let sb = Slot::from_i64(b);
        prop_assert_eq!(binop(op::I64_ADD, sa, sb).unwrap().i64(), a.wrapping_add(b));
        prop_assert_eq!(binop(op::I64_MUL, sa, sb).unwrap().i64(), a.wrapping_mul(b));
        prop_assert_eq!(binop(op::I64_XOR, sa, sb).unwrap().i64(), a ^ b);
        prop_assert_eq!(
            binop(op::I64_ROTL, sa, sb).unwrap().u64(),
            (a as u64).rotate_left((b as u32) & 63)
        );
        if b != 0 {
            prop_assert_eq!(
                binop(op::I64_REM_U, sa, sb).unwrap().u64(),
                (a as u64) % (b as u64)
            );
        }
    }

    /// The lowering refactor's differential property: random modules must
    /// behave identically — results, traps, monitor reports — when run
    /// interp-only on the lowered pipeline, interp-only on classic byte
    /// dispatch, JIT-only, tiered (both dispatchers), and
    /// probe-instrumented. (A dependency-free generator mirroring this
    /// property is wired into `cargo test` as `tests/differential.rs`;
    /// this version gets proptest's shrinking when the crate is
    /// available.)
    #[test]
    fn dispatchers_and_tiers_agree_on_random_modules(e in expr_strategy(), arg in any::<i32>()) {
        use wizard::engine::{Dispatch, ExecMode};
        let m = module_for(&e);
        let reference = {
            let mut p = Process::new(
                m.clone(),
                EngineConfig::interpreter_bytecode(),
                &Linker::new(),
            )
            .unwrap();
            p.invoke_export("run", &[Value::I32(arg)])
        };
        let configs = vec![
            EngineConfig::interpreter(),
            EngineConfig::jit(),
            EngineConfig::builder().tierup_threshold(2).build(),
            EngineConfig::builder()
                .mode(ExecMode::Tiered)
                .dispatch(Dispatch::Bytecode)
                .tierup_threshold(2)
                .build(),
        ];
        for config in configs {
            let mut p = Process::new(m.clone(), config, &Linker::new()).unwrap();
            let got = p.invoke_export("run", &[Value::I32(arg)]);
            prop_assert_eq!(&got, &reference);
        }
        // Probe-instrumented: hotness counts every instruction (probing
        // every slot, fused or not); reports are dispatcher-invariant and
        // the program result is unperturbed.
        let mut reports = Vec::new();
        for config in [EngineConfig::interpreter(), EngineConfig::interpreter_bytecode()] {
            let mut p = Process::new(m.clone(), config, &Linker::new()).unwrap();
            let mon = p.attach_monitor(wizard::monitors::HotnessMonitor::new()).unwrap();
            let got = p.invoke_export("run", &[Value::I32(arg)]);
            prop_assert_eq!(&got, &reference);
            reports.push(mon.report());
        }
        prop_assert_eq!(&reports[0], &reports[1]);
    }

    /// The shared-artifact property: two processes off one
    /// `Arc<ModuleArtifact>` — one probed then detached, one untouched —
    /// match an owned-module process result-for-result and
    /// report-for-report, the sibling never observes the probes, and
    /// detach rejoins the shared code. (The dependency-free generator in
    /// `tests/differential.rs` mirrors this across all dispatchers and
    /// fuel-bounded runs; this version gets proptest's shrinking.)
    #[test]
    fn shared_artifact_processes_match_owned(e in expr_strategy(), arg in any::<i32>()) {
        use std::sync::Arc;
        use wizard::engine::ModuleArtifact;
        let m = module_for(&e);
        let mut owned = Process::new(m.clone(), EngineConfig::interpreter(), &Linker::new())
            .unwrap();
        let mon_o = owned.attach_monitor(wizard::monitors::HotnessMonitor::new()).unwrap();
        let expect = owned.invoke_export("run", &[Value::I32(arg)]);

        let artifact = Arc::new(ModuleArtifact::new(m).unwrap());
        let mut probed = Process::instantiate(
            Arc::clone(&artifact),
            EngineConfig::interpreter(),
            &Linker::new(),
        )
        .unwrap();
        let mut sibling = Process::instantiate(
            Arc::clone(&artifact),
            EngineConfig::interpreter(),
            &Linker::new(),
        )
        .unwrap();
        let mon_p = probed.attach_monitor(wizard::monitors::HotnessMonitor::new()).unwrap();
        let got = probed.invoke_export("run", &[Value::I32(arg)]);
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(mon_p.report(), mon_o.report());

        let got_sib = sibling.invoke_export("run", &[Value::I32(arg)]);
        prop_assert_eq!(&got_sib, &expect);
        prop_assert_eq!(sibling.stats().probe_fires, 0);
        prop_assert_eq!(sibling.resident_overlay_bytes(), 0);

        let handle = mon_p.handle();
        probed.detach_monitor(handle).unwrap();
        prop_assert_eq!(probed.resident_overlay_bytes(), 0);
        let func = probed.module().export_func("run").unwrap();
        prop_assert_eq!(
            probed.code_identity(func).unwrap(),
            sibling.code_identity(func).unwrap()
        );
    }

    /// The translation-validation property: every random module's lowered
    /// form is effect-equivalent to its byte form, and stays so after a
    /// probe insert/remove cycle. (A dependency-free 500-seed sweep of the
    /// same property is wired into `cargo test` as
    /// `tests/differential.rs`; this version gets proptest's shrinking.)
    #[test]
    fn random_modules_translation_validate(e in expr_strategy(), arg in any::<i32>()) {
        use std::sync::Arc;
        use wizard::engine::ModuleArtifact;
        let m = module_for(&e);
        let artifact = Arc::new(ModuleArtifact::new(m).unwrap());
        artifact.lower_all();
        prop_assert!(wizard::analysis::validate_lowering(&artifact).is_ok());

        wizard::analysis::install_engine_validator();
        let config = EngineConfig::builder().validate_lowering(true).build();
        let mut p = Process::instantiate(Arc::clone(&artifact), config, &Linker::new())
            .unwrap();
        prop_assert_eq!(p.stats().lowering_validations, 1);
        let mon = p.attach_monitor(wizard::monitors::HotnessMonitor::new()).unwrap();
        p.invoke_export("run", &[Value::I32(arg)]).unwrap();
        p.detach_monitor(mon.handle()).unwrap();
        prop_assert!(wizard::analysis::validate_lowering(&artifact).is_ok());
    }

    /// Random probe insert/remove sequences: the registry, the probe
    /// bytes, and fire counts stay consistent.
    #[test]
    fn probe_churn_is_consistent(ops in proptest::collection::vec(any::<(u8, bool)>(), 1..40)) {
        // A function with a few instruction sites.
        let mut mb = ModuleBuilder::new();
        let mut f = FuncBuilder::new(&[I32], &[I64]);
        let i = f.local(I32);
        let acc = f.local(I64);
        f.for_range(i, 0, |f| {
            f.local_get(acc).i64_const(3).i64_add().local_set(acc);
        });
        f.local_get(acc);
        mb.add_func("run", f);
        let m = mb.build().unwrap();
        let mut p = Process::new(m, EngineConfig::tiered(), &Linker::new()).unwrap();
        let func = p.module().export_func("run").unwrap();
        // Instruction boundaries of the function body.
        let pcs: Vec<u32> = {
            let body = &p.module().func_body(func).unwrap().code.clone();
            wizard::wasm::instr::InstrIter::new(body)
                .map(|x| x.unwrap().pc)
                .collect()
        };
        let mut live: Vec<(wizard::engine::ProbeId, u32)> = Vec::new();
        for (sel, insert) in ops {
            if insert || live.is_empty() {
                let pc = pcs[sel as usize % pcs.len()];
                let id = p.add_local_probe_val(func, pc, CountProbe::new()).unwrap();
                live.push((id, pc));
            } else {
                let (id, pc) = live.swap_remove(sel as usize % live.len());
                p.remove_probe(id).unwrap();
                let still = live.iter().any(|(_, q)| *q == pc);
                prop_assert_eq!(p.has_probe_byte(func, pc), still);
            }
            // Each live site must carry the probe byte.
            for (_, pc) in &live {
                prop_assert!(p.has_probe_byte(func, *pc));
            }
        }
        // The program still runs correctly under whatever instrumentation
        // remains.
        let r = p.invoke_export("run", &[Value::I32(20)]).unwrap();
        prop_assert_eq!(r, vec![Value::I64(60)]);
    }
}
