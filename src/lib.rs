//! `wizard`: facade crate for the `wizard-rs` workspace — a Rust
//! reproduction of *Flexible Non-intrusive Dynamic Instrumentation for
//! WebAssembly* (Titzer et al., ASPLOS 2024).
//!
//! Re-exports the member crates:
//!
//! * [`wasm`] — module IR, binary codec, validator, assembler DSL;
//! * [`analysis`] — CFG/dataflow framework and the translation validator
//!   for the lowered pipeline (`wasm-lint`, `validate_lowering`);
//! * [`engine`] — the multi-tier engine with probes, FrameAccessor, JIT
//!   intrinsification and deoptimization (the paper's contribution);
//! * [`monitors`] — the Monitor Zoo;
//! * [`pool`] — the sharded multi-process pool (fuel-sliced round-robin
//!   scheduling of instrumented processes across worker threads);
//! * [`script`] — wizard-script, the declarative match-rule
//!   instrumentation language compiled onto the probe engine;
//! * [`trace`] — compact streaming trace capture (binary branch/call
//!   trace format, pluggable sinks) and offline analyzers
//!   (branch-predictor simulation, SimPoint-style phase detection);
//! * [`rewriter`] — static bytecode rewriting (intrusive baseline);
//! * [`baselines`] — Wasabi-style, DynamoRIO-style and JVMTI-style
//!   comparison systems;
//! * [`suites`] — PolyBench / Ostrich-like / libsodium-like / Richards
//!   benchmark generators.
//!
//! See the `examples/` directory for runnable entry points and
//! `EXPERIMENTS.md` for the paper-figure reproduction harness.

#![warn(missing_docs)]

pub use wizard_analysis as analysis;
pub use wizard_baselines as baselines;
pub use wizard_engine as engine;
pub use wizard_monitors as monitors;
pub use wizard_pool as pool;
pub use wizard_rewriter as rewriter;
pub use wizard_script as script;
pub use wizard_suites as suites;
pub use wizard_trace as trace;
pub use wizard_wasm as wasm;
