//! Quickstart: build a Wasm module in Rust, instantiate it, attach the
//! hotness and loop monitors, run, print structured reports, and detach —
//! demonstrating the zero-overhead-when-off lifecycle.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::{HotnessMonitor, LoopMonitor};
use wizard::wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard::wasm::types::ValType::I32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A module computing sum(0..n) with a nested check loop.
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    let module = mb.build()?;

    // Instantiate under the tiered engine and attach two monitors. Each
    // attach_monitor call returns a typed handle for queries + detach.
    let mut process = Process::new(module, EngineConfig::tiered(), &Linker::new())?;
    let hotness = process.attach_monitor(HotnessMonitor::new())?;
    let loops = process.attach_monitor(LoopMonitor::new())?;

    let result = process.invoke_export("sum", &[Value::I32(1000)])?;
    println!("sum(0..1000) = {:?}\n", result[0]);
    println!("{}", loops.report());
    println!("{}", hotness.report());
    println!("engine stats: {:?}", process.stats());

    // Detach both monitors: all their probes are removed in one batched
    // pass each, restoring the zero-overhead baseline.
    process.detach_monitor(hotness.handle())?;
    process.detach_monitor(loops.handle())?;
    assert_eq!(process.probed_location_count(), 0);
    assert!(!process.in_global_mode());
    println!("\nafter detach: 0 probed locations, back to baseline");
    Ok(())
}
