//! Quickstart: build a Wasm module in Rust, instantiate it, attach the
//! hotness and loop monitors, run, and print the reports.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::{HotnessMonitor, LoopMonitor, Monitor};
use wizard::wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard::wasm::types::ValType::I32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A module computing sum(0..n) with a nested check loop.
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let i = f.local(I32);
    let acc = f.local(I32);
    f.for_range(i, 0, |f| {
        f.local_get(acc).local_get(i).i32_add().local_set(acc);
    });
    f.local_get(acc);
    mb.add_func("sum", f);
    let module = mb.build()?;

    // Instantiate under the tiered engine and attach two monitors.
    let mut process = Process::new(module, EngineConfig::tiered(), &Linker::new())?;
    let mut hotness = HotnessMonitor::new();
    let mut loops = LoopMonitor::new();
    hotness.attach(&mut process)?;
    loops.attach(&mut process)?;

    let result = process.invoke_export("sum", &[Value::I32(1000)])?;
    println!("sum(0..1000) = {:?}\n", result[0]);
    println!("{}", loops.report());
    println!("{}", hotness.report());
    println!("engine stats: {:?}", process.stats());
    Ok(())
}
