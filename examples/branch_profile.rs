//! Branch profiling with intrinsified operand probes: profiles every
//! conditional branch of a crypto kernel in the JIT tier and prints the
//! taken/not-taken distribution, plus the engine's tiering activity.
//!
//! ```sh
//! cargo run --example branch_profile
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::BranchMonitor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = wizard::suites::libsodium_suite(wizard::suites::Scale::Test)
        .into_iter()
        .find(|b| b.name == "scalarmult")
        .expect("scalarmult exists");

    // JIT with operand-probe intrinsification: the branch probes compile
    // to direct top-of-stack calls (paper Figure 2).
    let mut process = Process::new(bench.module, EngineConfig::jit(), &Linker::new())?;
    let branches = process.attach_monitor(BranchMonitor::new())?;

    process.invoke_export("run", &[Value::I32(bench.n)])?;

    println!("{}", branches.report());
    println!("total branch executions: {}", branches.borrow().total_branches());
    Ok(())
}
