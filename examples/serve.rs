//! Multi-tenant serving: submit a mixed three-tenant fleet to the
//! work-stealing `ServeEngine`, with a fuel budget throttling the
//! background tenant, then print per-job outcomes and the fleet summary.
//!
//! ```sh
//! cargo run --example serve
//! ```

use wizard::engine::{EngineConfig, Value};
use wizard::monitors::HotnessMonitor;
use wizard::pool::{Job, Priority, ServeConfig, ServeEngine};
use wizard::suites::{tenant_fleet, Scale};

fn main() {
    // Unlike the batch pool (`examples/pool.rs`), the serving engine is
    // long-lived: jobs are admitted online through a bounded queue,
    // scheduled by strict priority with per-tenant fuel budgets, and
    // stolen between workers when one runs dry. A small `round_fuel`
    // makes the background tenant's budget visibly throttle here.
    let engine = ServeEngine::new(
        ServeConfig {
            workers: 2,
            engine: EngineConfig::builder().fuel_slice(2_000).build(),
            round_fuel: 100_000,
            ..ServeConfig::default()
        }
        .tenant_budget("background", 2_000),
    );

    let mut handles = Vec::new();
    for (k, spec) in tenant_fleet(Scale::Test, 9).iter().enumerate() {
        let priority = match spec.class {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        let job = Job::new(
            format!("{}-{k}", spec.name),
            spec.module.clone(),
            "run",
            vec![Value::I32(spec.n)],
        )
        .for_tenant(spec.tenant)
        .at_priority(priority)
        .with_monitor(HotnessMonitor::new);
        // Ingestion-corpus kernels import host functions; their linker is
        // built on whichever worker instantiates the process.
        let job = if spec.uses_imports {
            let module = spec.module.clone();
            job.with_linker(move || {
                wizard::engine::Shims::standard().linker_for(&module).expect("kernel links")
            })
        } else {
            job
        };
        handles.push(engine.try_submit(job).handle().expect("queue has space"));
    }

    println!(
        "{:<18} {:<12} {:<7} {:>7} {:>7} {:>9}  result",
        "job", "tenant", "prio", "slices", "moves", "lat ms"
    );
    for h in &handles {
        let o = h.wait();
        println!(
            "{:<18} {:<12} {:<7} {:>7} {:>7} {:>9.3}  {:?}",
            o.name,
            o.tenant,
            o.priority.name(),
            o.slices,
            o.migrations,
            o.latency.as_secs_f64() * 1e3,
            o.status,
        );
    }

    let summary = engine.shutdown();
    println!(
        "\nfleet: {} jobs, {} slices, {} steals, {} budget throttles, queue depth max {}",
        summary.completed,
        summary.stats.slices_executed,
        summary.stats.steals,
        summary.stats.budget_throttles,
        summary.stats.queue_depth_max,
    );
    for t in &summary.tenants {
        println!(
            "tenant {:<12} fuel={:<10} throttles={:<3} jobs={}",
            t.tenant, t.fuel_spent, t.throttles, t.jobs
        );
    }
    if let Some(r) = summary.merged_report("hotness") {
        println!("\nmerged across all tenants:\n{r}");
    }
}
