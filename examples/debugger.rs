//! Bytecode-level debugging session: a breakpoint, inspection, two single
//! steps (one-shot global probes), and a fix-and-continue state
//! modification that changes the program's result.
//!
//! ```sh
//! cargo run --example debugger
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::Debugger;
use wizard::wasm::builder::{FuncBuilder, ModuleBuilder};
use wizard::wasm::types::ValType::I32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mb = ModuleBuilder::new();
    let mut f = FuncBuilder::new(&[I32], &[I32]);
    let t = f.local(I32);
    f.local_get(0).i32_const(100).i32_add().local_set(t);
    f.local_get(t).i32_const(3).i32_mul();
    mb.add_func("calc", f);
    let module = mb.build()?;

    let mut process = Process::new(module, EngineConfig::tiered(), &Linker::new())?;
    let func = process.module().export_func("calc").unwrap();

    let mut debugger = Debugger::new([
        "where", "locals", "stack",
        // fix-and-continue: overwrite the argument before it is read
        "set 0 5", "step", "step", "locals", "continue",
    ]);
    debugger.breakpoint(func, 0);
    let debugger = process.attach_monitor(debugger)?;

    let result = process.invoke_export("calc", &[Value::I32(1)])?;
    println!("--- session transcript ---");
    println!("{}", debugger.borrow().output());
    println!("result: {:?} (would be 303 without the `set`)", result[0]);
    assert_eq!(result, vec![Value::I32((5 + 100) * 3)]);

    // Detaching removes the breakpoint probe; later runs are undisturbed.
    process.detach_monitor(debugger.handle())?;
    let clean = process.invoke_export("calc", &[Value::I32(1)])?;
    assert_eq!(clean, vec![Value::I32(303)]);
    println!("after detach: calc(1) = {:?}", clean[0]);
    Ok(())
}
