//! Code-coverage tool: runs a PolyBench kernel under the Coverage monitor
//! (self-removing probes — the canonical dynamic-probe-removal analysis)
//! and prints per-function coverage. Note how the probe count drops to
//! the uncovered remainder after the run.
//!
//! ```sh
//! cargo run --example coverage
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::{CoverageMonitor, Monitor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = wizard::suites::polybench_suite(wizard::suites::Scale::Test)
        .into_iter()
        .find(|b| b.name == "cholesky")
        .expect("cholesky exists");

    let mut process = Process::new(bench.module, EngineConfig::tiered(), &Linker::new())?;
    let mut coverage = CoverageMonitor::new();
    coverage.attach(&mut process)?;
    let installed = process.probed_location_count();

    process.invoke_export("run", &[Value::I32(bench.n)])?;

    println!("{}", coverage.report());
    println!(
        "probes: {installed} installed, {} remaining after the run \
         (covered paths removed themselves)",
        process.probed_location_count()
    );
    Ok(())
}
