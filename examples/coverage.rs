//! Code-coverage tool: runs a PolyBench kernel under the Coverage monitor
//! (self-removing probes — the canonical dynamic-probe-removal analysis)
//! and prints per-function coverage. Note how the probe count drops to
//! the uncovered remainder after the run, and to zero after detach.
//!
//! ```sh
//! cargo run --example coverage
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::CoverageMonitor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = wizard::suites::polybench_suite(wizard::suites::Scale::Test)
        .into_iter()
        .find(|b| b.name == "cholesky")
        .expect("cholesky exists");

    let mut process = Process::new(bench.module, EngineConfig::tiered(), &Linker::new())?;
    let coverage = process.attach_monitor(CoverageMonitor::new())?;
    let installed = process.probed_location_count();

    process.invoke_export("run", &[Value::I32(bench.n)])?;

    println!("{}", coverage.report());
    println!(
        "probes: {installed} installed (one invalidation pass), {} remaining \
         after the run (covered paths removed themselves)",
        process.probed_location_count()
    );

    process.detach_monitor(coverage.handle())?;
    println!("after detach: {} probed locations", process.probed_location_count());
    Ok(())
}
