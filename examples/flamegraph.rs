//! Calling-context-tree profiling of the Richards scheduler: wall-clock
//! self/total times via the entry/exit library (built purely on probes)
//! plus flame-graph lines you can paste into a flamegraph renderer.
//!
//! ```sh
//! cargo run --example flamegraph
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::{CallTreeMonitor, CallsMonitor, Monitor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = wizard::suites::richards_benchmark(20_000);
    let mut process = Process::new(bench.module, EngineConfig::tiered(), &Linker::new())?;

    let mut tree = CallTreeMonitor::new();
    let mut calls = CallsMonitor::new();
    tree.attach(&mut process)?;
    calls.attach(&mut process)?;

    process.invoke_export("run", &[Value::I32(bench.n)])?;
    tree.drain();

    println!("{}", tree.report());
    println!("--- flame graph lines (self µs) ---");
    for line in tree.flame_lines() {
        println!("{line}");
    }
    println!("\n{}", calls.report());
    Ok(())
}
