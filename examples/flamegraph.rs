//! Calling-context-tree profiling of the Richards scheduler: wall-clock
//! self/total times via the entry/exit library (built purely on probes)
//! plus flame-graph lines you can paste into a flamegraph renderer.
//!
//! ```sh
//! cargo run --example flamegraph
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, Process, Value};
use wizard::monitors::{CallTreeMonitor, CallsMonitor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = wizard::suites::richards_benchmark(20_000);
    let mut process = Process::new(bench.module, EngineConfig::tiered(), &Linker::new())?;

    let tree = process.attach_monitor(CallTreeMonitor::new())?;
    let calls = process.attach_monitor(CallsMonitor::new())?;

    process.invoke_export("run", &[Value::I32(bench.n)])?;

    // Detach drains the call tree's shadow stack (CallTreeMonitor's
    // on_detach) and removes all probes of both monitors.
    process.detach_monitor(tree.handle())?;
    process.detach_monitor(calls.handle())?;
    assert_eq!(process.probed_location_count(), 0);

    println!("{}", tree.report());
    println!("--- flame graph lines (self µs) ---");
    for line in tree.borrow().flame_lines() {
        println!("{line}");
    }
    println!("\n{}", calls.report());
    Ok(())
}
