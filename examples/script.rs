//! wizard-script demo: instrumentation as *data*. One script source is
//! compiled onto the probe engine twice — against a single Richards
//! process (showing the compiler's per-site classification) and across a
//! small pool fleet (per-job script monitors, fleet-merged reports).
//!
//! ```sh
//! cargo run --example script
//! ```

use wizard::engine::store::Linker;
use wizard::engine::{EngineConfig, ProbeKind, Process, Value};
use wizard::pool::{Job, Pool, PoolConfig};
use wizard::script::ScriptMonitor;

const SOURCE: &str = r#"
monitor "richards-stats"

# Pure counter bumps lower to intrinsified count probes.
match loop-header do inc loops
match call       do inc calls[site]

# The compiler folds `op` per site: on br_table sites this rule is a
# pure counter; on if/br_if sites it becomes a top-of-stack operand
# probe; it never needs a generic probe.
match branch when op == br_table || tos != 0 do inc taken[site]
match branch when op != br_table && tos == 0 do inc fall[site]

report "branch profile" ratio "taken" taken / fall
report "hot callsites"  top 5 calls
report "summary"        total "loop-header executions" loops
report "summary"        total "branches" taken + fall
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = wizard::suites::richards_benchmark(200);

    // --- single process: compile, classify, run, report ---
    let mut p = Process::new(bench.module.clone(), EngineConfig::tiered(), &Linker::new())?;
    let m = p.attach_monitor(ScriptMonitor::from_source(SOURCE)?)?;
    {
        let mon = m.borrow();
        let (count, operand, generic) = mon.kind_counts();
        println!(
            "compiled {} rules onto {} probes: {count} count (JIT-inlined), \
             {operand} operand (direct call), {generic} generic; \
             {} rule-site pairs proven dead and dropped",
            mon.script().rules.len(),
            mon.lowering().len(),
            mon.dropped_sites(),
        );
        let sample = mon.lowering().iter().find(|l| l.kind == ProbeKind::Operand);
        if let Some(l) = sample {
            println!(
                "e.g. rule {} at {} kept only the residue `{}`",
                l.rule,
                l.loc,
                l.residual.as_deref().unwrap_or("-"),
            );
        }
    }
    p.invoke_export("run", &[Value::I32(bench.n)])?;
    println!("\n{}", m.report());
    p.detach_monitor(m.handle())?;
    assert_eq!(p.probed_location_count(), 0);
    println!("detached: zero-overhead baseline restored\n");

    // --- the same source, per job, across a fleet ---
    let factory = wizard::script::monitor_factory(SOURCE)?;
    let mut pool = Pool::new(PoolConfig {
        shards: 2,
        engine: EngineConfig::builder().fuel_slice(50_000).build(),
    });
    for k in 0..4 {
        pool.submit(
            Job::new(format!("richards-{k}"), bench.module.clone(), "run", vec![Value::I32(100)])
                .with_monitor_factory(factory.clone()),
        );
    }
    let outcome = pool.run();
    assert!(outcome.all_ok());
    let merged = outcome.merged_report("richards-stats").expect("merged script report");
    println!("fleet of {} jobs, merged:\n{merged}", outcome.jobs.len());
    Ok(())
}
