//! Multi-tenant pool: run a fleet of monitored Wasm processes across
//! shard worker threads with fuel-sliced round-robin scheduling, then
//! print the per-job and merged fleet-wide reports.
//!
//! ```sh
//! cargo run --example pool
//! ```

use wizard::engine::{EngineConfig, Value};
use wizard::monitors::HotnessMonitor;
use wizard::pool::{Job, Pool, PoolConfig};
use wizard::suites::{fleet, Scale};

fn main() {
    // A mixed richards + polybench fleet, every process carrying its own
    // hotness monitor. Monitors are Rc-based and single-threaded; the pool
    // builds each one *on* the worker thread that owns its process.
    let benches = fleet(Scale::Test, 8);
    let config = PoolConfig {
        shards: 2,
        // 10k bytecode instructions per turn: no process monopolizes a
        // worker (EngineStats::suspensions counts the preemptions).
        engine: EngineConfig::builder().fuel_slice(10_000).build(),
    };
    let mut pool = Pool::new(config);
    for (k, b) in benches.iter().enumerate() {
        pool.submit(
            Job::new(format!("{}-{k}", b.name), b.module.clone(), "run", vec![Value::I32(b.n)])
                .with_monitor(HotnessMonitor::new),
        );
    }

    let outcome = pool.run();
    println!("{:<16} {:>6} {:>8} {:>14}  result", "job", "shard", "slices", "instructions");
    for j in &outcome.jobs {
        let instrs = j
            .report
            .as_ref()
            .and_then(|r| r.get("summary"))
            .and_then(|s| s.count_of("total instruction executions"))
            .unwrap_or(0);
        println!("{:<16} {:>6} {:>8} {:>14}  {:?}", j.name, j.shard, j.slices, instrs, j.result);
    }
    println!("\nfleet stats: {:?}", outcome.stats);
    for r in &outcome.merged_reports {
        println!("\nmerged across the fleet:\n{r}");
    }
}
